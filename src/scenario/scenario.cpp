#include "scenario/scenario.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "fault/schedule.hpp"

namespace iba::scenario {

namespace detail {

std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  IBA_ASSERT(ec == std::errc{});
  return std::string(buf, ptr);
}

}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Lexing: sections of key = value lines

struct Entry {
  std::string value;
  int line = 0;
  mutable bool used = false;
};

struct Section {
  int line = 0;  ///< line of the [header]
  mutable bool used = false;
  std::map<std::string, Entry> entries;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

constexpr std::string_view kKnownSections[] = {
    "scenario", "system",  "arrival", "faults",
    "backpressure", "control", "run",     "expect",  "record",
};

bool known_section(std::string_view name) {
  for (const std::string_view known : kKnownSections) {
    if (name == known) return true;
  }
  return false;
}

/// The lexed document plus the diagnostic context (origin path).
class Doc {
 public:
  Doc(std::string_view text, std::string origin) : origin_(std::move(origin)) {
    std::string current;
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      std::string_view line = text.substr(
          pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
      pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
      ++line_no;
      if (const std::size_t hash = line.find('#');
          hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      line = trim(line);
      if (line.empty()) continue;
      if (line.front() == '[') {
        if (line.back() != ']' || line.size() < 3) {
          fail_line(line_no, "malformed section header '" +
                                 std::string(line) + "'");
        }
        const auto name = std::string(trim(line.substr(1, line.size() - 2)));
        if (!known_section(name)) {
          fail_line(line_no, "unknown section [" + name + "]");
        }
        if (sections_.contains(name)) {
          fail_line(line_no, "duplicate section [" + name + "]");
        }
        current = name;
        sections_[name].line = line_no;
        continue;
      }
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        fail_line(line_no,
                  "expected 'key = value', got '" + std::string(line) + "'");
      }
      const auto key = std::string(trim(line.substr(0, eq)));
      const auto value = std::string(trim(line.substr(eq + 1)));
      if (current.empty()) {
        fail_line(line_no, "key '" + key + "' before any [section]");
      }
      if (key.empty()) fail_line(line_no, "empty key");
      Section& section = sections_[current];
      if (section.entries.contains(key)) {
        fail(line_no, current, key, "duplicate key");
      }
      section.entries[key] = Entry{value, line_no};
    }
  }

  [[nodiscard]] const Section* find(const std::string& name) const {
    const auto it = sections_.find(name);
    if (it == sections_.end()) return nullptr;
    it->second.used = true;
    return &it->second;
  }

  /// After all sections are consumed: any entry nobody asked about is an
  /// unknown key (reported lowest-line-first for stable diagnostics).
  void finish() const {
    const Entry* worst = nullptr;
    const std::string* worst_section = nullptr;
    const std::string* worst_key = nullptr;
    for (const auto& [section_name, section] : sections_) {
      for (const auto& [key, entry] : section.entries) {
        if (entry.used) continue;
        if (worst == nullptr || entry.line < worst->line) {
          worst = &entry;
          worst_section = &section_name;
          worst_key = &key;
        }
      }
    }
    if (worst != nullptr) {
      fail(worst->line, *worst_section, *worst_key, "unknown key");
    }
  }

  [[noreturn]] void fail_line(int line, const std::string& why) const {
    throw ScenarioError(origin_ + ":" + std::to_string(line) + ": " + why);
  }

  [[noreturn]] void fail(int line, const std::string& section,
                         const std::string& key,
                         const std::string& why) const {
    throw ScenarioError(origin_ + ":" + std::to_string(line) + ": [" +
                        section + "] " + key + ": " + why);
  }

 private:
  std::string origin_;
  std::map<std::string, Section> sections_;
};

// ---------------------------------------------------------------------------
// Typed field access with named-field diagnostics

class Fields {
 public:
  Fields(const Doc& doc, std::string name)
      : doc_(doc), name_(std::move(name)), section_(doc.find(name_)) {}

  [[nodiscard]] bool present() const { return section_ != nullptr; }

  [[nodiscard]] const Entry* find(const std::string& key) const {
    if (section_ == nullptr) return nullptr;
    const auto it = section_->entries.find(key);
    if (it == section_->entries.end()) return nullptr;
    it->second.used = true;
    return &it->second;
  }

  [[nodiscard]] std::optional<std::string> str(const std::string& key) const {
    const Entry* entry = find(key);
    if (entry == nullptr) return std::nullopt;
    if (entry->value.empty()) fail(key, "empty value");
    return entry->value;
  }

  [[nodiscard]] std::string require_str(const std::string& key) const {
    const Entry* entry = find(key);
    if (entry == nullptr) {
      doc_.fail(section_ != nullptr ? section_->line : 0, name_, key,
                "missing required key");
    }
    if (entry->value.empty()) fail(key, "empty value");
    return entry->value;
  }

  [[nodiscard]] std::uint64_t require_u64(const std::string& key,
                                          std::uint64_t lo,
                                          std::uint64_t hi) const {
    return parse_u64(key, require_str(key), lo, hi);
  }

  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback, std::uint64_t lo,
                                     std::uint64_t hi) const {
    const Entry* entry = find(key);
    if (entry == nullptr) return fallback;
    return parse_u64(key, entry->value, lo, hi);
  }

  [[nodiscard]] std::uint32_t require_u32(const std::string& key,
                                          std::uint32_t lo,
                                          std::uint32_t hi) const {
    return static_cast<std::uint32_t>(require_u64(key, lo, hi));
  }

  [[nodiscard]] std::uint32_t u32_or(const std::string& key,
                                     std::uint32_t fallback, std::uint32_t lo,
                                     std::uint32_t hi) const {
    return static_cast<std::uint32_t>(u64_or(key, fallback, lo, hi));
  }

  [[nodiscard]] double require_dbl(const std::string& key, double lo,
                                   double hi) const {
    return parse_dbl(key, require_str(key), lo, hi);
  }

  [[nodiscard]] double dbl_or(const std::string& key, double fallback,
                              double lo, double hi) const {
    const Entry* entry = find(key);
    if (entry == nullptr) return fallback;
    return parse_dbl(key, entry->value, lo, hi);
  }

  [[nodiscard]] bool flag_or(const std::string& key, bool fallback) const {
    const Entry* entry = find(key);
    if (entry == nullptr) return fallback;
    const std::string& v = entry->value;
    if (v == "on" || v == "true" || v == "yes") return true;
    if (v == "off" || v == "false" || v == "no") return false;
    fail(key, "expected on/off, got '" + v + "'");
  }

  [[noreturn]] void fail(const std::string& key,
                         const std::string& why) const {
    const Entry* entry = find(key);
    doc_.fail(entry != nullptr ? entry->line
                               : (section_ != nullptr ? section_->line : 0),
              name_, key, why);
  }

  [[nodiscard]] std::uint64_t parse_u64(const std::string& key,
                                        const std::string& text,
                                        std::uint64_t lo,
                                        std::uint64_t hi) const {
    std::uint64_t value = 0;
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      fail(key, "expected an unsigned integer, got '" + text + "'");
    }
    if (value < lo || value > hi) {
      fail(key, "value " + text + " out of range [" + std::to_string(lo) +
                    ", " + std::to_string(hi) + "]");
    }
    return value;
  }

  [[nodiscard]] double parse_dbl(const std::string& key,
                                 const std::string& text, double lo,
                                 double hi) const {
    double value = 0.0;
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      fail(key, "expected a number, got '" + text + "'");
    }
    if (!(value >= lo && value <= hi)) {
      fail(key, "value " + text + " out of range [" +
                    detail::format_double(lo) + ", " +
                    detail::format_double(hi) + "]");
    }
    return value;
  }

 private:
  const Doc& doc_;
  std::string name_;
  const Section* section_;
};

// ---------------------------------------------------------------------------
// Section processors

void parse_arrival(const Fields& fields, ArrivalModel& model,
                   const std::string& base_dir) {
  const std::string kind = fields.require_str("model");
  if (kind == "constant") {
    model.pattern = ArrivalPattern::kConstant;
  } else if (kind == "sinusoid") {
    model.pattern = ArrivalPattern::kSinusoid;
  } else if (kind == "bursts") {
    model.pattern = ArrivalPattern::kBursts;
  } else if (kind == "regimes") {
    model.pattern = ArrivalPattern::kRegimes;
  } else if (kind == "trace") {
    model.pattern = ArrivalPattern::kTrace;
  } else {
    fields.fail("model",
                "unknown arrival model '" + kind +
                    "' (constant|sinusoid|bursts|regimes|trace)");
  }

  if (const auto dist = fields.str("distribution")) {
    if (*dist == "deterministic") {
      model.distribution = core::ArrivalModel::kDeterministic;
    } else if (*dist == "binomial") {
      model.distribution = core::ArrivalModel::kBinomial;
    } else if (*dist == "poisson") {
      model.distribution = core::ArrivalModel::kPoisson;
    } else {
      fields.fail("distribution",
                  "unknown distribution '" + *dist +
                      "' (deterministic|binomial|poisson)");
    }
  }

  switch (model.pattern) {
    case ArrivalPattern::kConstant:
      model.lambda = fields.require_dbl("lambda", 0.0, 1.0);
      break;
    case ArrivalPattern::kSinusoid:
      model.lambda = fields.require_dbl("lambda", 0.0, 1.0);
      model.amplitude = fields.require_dbl("amplitude", 0.0, 1.0);
      model.period = fields.require_u64("period", 2, UINT64_MAX);
      model.phase = fields.u64_or("phase", 0, 0, UINT64_MAX);
      if (model.lambda + model.amplitude > 1.0) {
        fields.fail("amplitude", "lambda + amplitude exceeds 1");
      }
      if (model.lambda - model.amplitude < 0.0) {
        fields.fail("amplitude", "lambda - amplitude drops below 0");
      }
      break;
    case ArrivalPattern::kBursts:
      model.lambda = fields.require_dbl("lambda", 0.0, 1.0);
      model.burst_lambda = fields.require_dbl("burst-lambda", 0.0, 1.0);
      model.period = fields.require_u64("period", 1, UINT64_MAX);
      model.burst_width =
          fields.require_u64("burst-width", 1, model.period);
      model.burst_start = fields.u64_or("burst-start", 1, 1, UINT64_MAX);
      break;
    case ArrivalPattern::kRegimes: {
      const std::string schedule = fields.require_str("schedule");
      std::uint64_t last = 0;
      std::size_t pos = 0;
      while (pos <= schedule.size()) {
        std::size_t semi = schedule.find(';', pos);
        if (semi == std::string::npos) semi = schedule.size();
        const auto item = std::string(
            trim(std::string_view(schedule).substr(pos, semi - pos)));
        pos = semi + 1;
        if (item.empty()) continue;
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos) {
          fields.fail("schedule", "expected 'round:lambda' items, got '" +
                                      item + "'");
        }
        Regime regime;
        regime.from =
            fields.parse_u64("schedule", item.substr(0, colon), 1, UINT64_MAX);
        regime.lambda =
            fields.parse_dbl("schedule", item.substr(colon + 1), 0.0, 1.0);
        if (model.regimes.empty() && regime.from != 1) {
          fields.fail("schedule", "first regime must start at round 1");
        }
        if (!model.regimes.empty() && regime.from <= last) {
          fields.fail("schedule", "regime rounds must be strictly ascending");
        }
        last = regime.from;
        model.regimes.push_back(regime);
      }
      if (model.regimes.empty()) {
        fields.fail("schedule", "no regimes given");
      }
      break;
    }
    case ArrivalPattern::kTrace: {
      const auto path = fields.str("trace");
      const auto counts = fields.str("counts");
      if (path.has_value() == counts.has_value()) {
        fields.fail(path ? "trace" : "counts",
                    "trace model needs exactly one of trace= (file) or "
                    "counts= (inline list)");
      }
      if (counts) {
        std::size_t pos = 0;
        while (pos <= counts->size()) {
          std::size_t comma = counts->find(',', pos);
          if (comma == std::string::npos) comma = counts->size();
          const auto item = std::string(
              trim(std::string_view(*counts).substr(pos, comma - pos)));
          pos = comma + 1;
          if (item.empty()) continue;
          model.trace.push_back(
              fields.parse_u64("counts", item, 0, UINT64_MAX));
        }
        if (model.trace.empty()) fields.fail("counts", "no counts given");
      } else {
        std::filesystem::path resolved(*path);
        if (resolved.is_relative() && !base_dir.empty()) {
          resolved = std::filesystem::path(base_dir) / resolved;
        }
        std::ifstream in(resolved);
        if (!in) {
          fields.fail("trace",
                      "cannot open trace file '" + resolved.string() + "'");
        }
        std::string token;
        std::uint64_t line_total = 0;
        while (in >> token) {
          if (token.front() == '#') {
            std::string rest;
            std::getline(in, rest);
            continue;
          }
          model.trace.push_back(
              fields.parse_u64("trace", token, 0, UINT64_MAX));
          ++line_total;
        }
        if (model.trace.empty()) {
          fields.fail("trace", "trace file '" + resolved.string() +
                                   "' holds no counts");
        }
        (void)line_total;
      }
      model.trace_loop = fields.flag_or("loop", true);
      break;
    }
  }

  if (const auto skew = fields.str("skew")) {
    if (*skew == "none" || *skew == "uniform") {
      model.skew = BinSkew::kUniform;
    } else if (*skew == "zipf") {
      model.skew = BinSkew::kZipf;
    } else {
      fields.fail("skew", "unknown skew '" + *skew + "' (none|zipf)");
    }
  }
  if (model.skew == BinSkew::kZipf) {
    model.zipf_s = fields.dbl_or("zipf-s", 1.0, 0.0, 8.0);
  } else if (fields.find("zipf-s") != nullptr) {
    fields.fail("zipf-s", "only meaningful with skew = zipf");
  }
}

void parse_faults(const Fields& fields, Scenario& scn) {
  const std::string schedule = fields.require_str("schedule");
  try {
    scn.fault_schedule = fault::to_string(fault::parse_schedule(schedule));
  } catch (const fault::ScheduleError& error) {
    fields.fail("schedule", error.what());
  }
  scn.fault_seed = fields.u64_or("seed", 1, 0, UINT64_MAX);
}

void parse_control(const Fields& fields, control::ControlConfig& config) {
  const std::string policy = fields.require_str("policy");
  if (!control::policy_from_string(policy, config.policy)) {
    fields.fail("policy", "unknown policy '" + policy +
                              "' (none|static|sweet-spot|aimd)");
  }
  config.c_max = fields.u32_or("c-max", 16, 1, 0xFFFFu);
  config.window = fields.u32_or("window", 64, 1, 1u << 16);
  config.cooldown = fields.u32_or("cooldown", 128, 1, UINT32_MAX);
  config.hysteresis = fields.dbl_or("hysteresis", 0.1, 0.0, 1.0);
  config.admission_target =
      fields.u64_or("admission-target", 0, 0, UINT64_MAX);
}

void parse_record(const Fields& fields, RecordSpec& record) {
  record.timeseries = fields.flag_or("timeseries", false);
  record.cadence = fields.u64_or("cadence", 1, 1, UINT64_MAX);
  record.window = fields.u64_or("window", 64, 1, 1u << 20);
  record.shed_spike = fields.u64_or("shed-spike", 0, 0, UINT64_MAX);
}

void parse_expect(const Fields& fields, Expectations& expect) {
  expect.audit = fields.flag_or("audit", false);
  expect.audit_every = fields.u64_or("audit-every", 64, 1, UINT64_MAX);
  if (!expect.audit && fields.find("audit-every") != nullptr) {
    fields.fail("audit-every", "only meaningful with audit = on");
  }
  expect.max_pool_over_n =
      fields.dbl_or("max-pool-over-n", 0.0, 0.0, 1e18);
  expect.max_wait_mean = fields.dbl_or("max-wait-mean", 0.0, 0.0, 1e18);
  expect.max_wait_p99 = fields.u64_or("max-wait-p99", 0, 0, UINT64_MAX);
  expect.max_wait_max = fields.u64_or("max-wait-max", 0, 0, UINT64_MAX);
  expect.max_shed = fields.u64_or("max-shed", UINT64_MAX, 0, UINT64_MAX);
}

}  // namespace

Scenario parse_scenario(std::string_view text, const std::string& origin,
                        const std::string& base_dir) {
  const Doc doc(text, origin.empty() ? "<string>" : origin);
  Scenario scn;

  const Fields meta(doc, "scenario");
  if (meta.present()) {
    if (const auto name = meta.str("name")) scn.name = *name;
    const std::uint64_t version = meta.u64_or("version", 1, 1, 1);
    (void)version;  // range check is the whole point
  }

  const Fields system(doc, "system");
  if (!system.present()) {
    doc.fail_line(1, "missing required section [system]");
  }
  scn.n = system.require_u32("n", 1, 1u << 28);
  scn.capacity = system.require_u32("c", 1, 0xFFFFu);
  if (const auto kernel = system.str("kernel")) {
    if (!core::kernel_from_string(*kernel, scn.kernel)) {
      system.fail("kernel",
                  "unknown kernel '" + *kernel + "' (scalar|bin-major)");
    }
  }
  scn.shards = system.u32_or("shards", 1, 1, 256);
  if (scn.shards > 1 && scn.kernel != core::RoundKernel::kBinMajor) {
    system.fail("shards", "sharding requires kernel = bin-major");
  }

  const Fields arrival(doc, "arrival");
  if (!arrival.present()) {
    doc.fail_line(1, "missing required section [arrival]");
  }
  parse_arrival(arrival, scn.arrival, base_dir);

  const Fields faults(doc, "faults");
  if (faults.present()) parse_faults(faults, scn);

  const Fields backpressure(doc, "backpressure");
  if (backpressure.present()) {
    const std::string mode = backpressure.require_str("mode");
    if (!core::backpressure_from_string(mode, scn.backpressure) ||
        scn.backpressure == core::BackpressureMode::kNone) {
      backpressure.fail("mode",
                        "unknown backpressure mode '" + mode +
                            "' (shed|defer)");
    }
    scn.pool_limit =
        backpressure.require_u64("pool-limit", 1, UINT64_MAX);
    scn.backoff = backpressure.u32_or("backoff", 4, 1, UINT32_MAX);
  }

  const Fields control(doc, "control");
  if (control.present()) parse_control(control, scn.control);
  if (scn.control.enabled()) {
    if (scn.capacity > scn.control.c_max) {
      control.fail("c-max", "system c " + std::to_string(scn.capacity) +
                                " exceeds c-max " +
                                std::to_string(scn.control.c_max));
    }
    if (scn.control.admission_target > 0 &&
        scn.backpressure == core::BackpressureMode::kNone) {
      control.fail("admission-target",
                   "requires a [backpressure] section (shed or defer)");
    }
  }

  const Fields run(doc, "run");
  if (!run.present()) {
    doc.fail_line(1, "missing required section [run]");
  }
  scn.rounds = run.require_u64("rounds", 1, UINT64_MAX);
  scn.burn_in = run.u64_or("burn-in", 0, 0, UINT64_MAX);
  scn.seed = run.u64_or("seed", 1, 0, UINT64_MAX);
  scn.checkpoint_every = run.u64_or("checkpoint-every", 0, 0, UINT64_MAX);

  const Fields expect(doc, "expect");
  if (expect.present()) parse_expect(expect, scn.expect);

  const Fields record(doc, "record");
  if (record.present()) parse_record(record, scn.record);

  doc.finish();

  for (const std::uint64_t count : scn.arrival.trace) {
    if (count > scn.n) {
      arrival.fail(arrival.find("counts") != nullptr ? "counts" : "trace",
                   "trace count " + std::to_string(count) + " exceeds n=" +
                       std::to_string(scn.n) + " (lambda <= 1)");
    }
  }

  // Backstop: the model's own validation (field checks above should have
  // caught everything nameable; anything left still maps to exit 2).
  try {
    scn.arrival.validate(scn.n);
    if (scn.control.enabled()) scn.control.validate();
  } catch (const std::exception& error) {
    throw ScenarioError(origin + ": " + error.what());
  }
  return scn;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ScenarioError("cannot open scenario file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string base_dir =
      std::filesystem::path(path).parent_path().string();
  return parse_scenario(buffer.str(), path, base_dir);
}

// ---------------------------------------------------------------------------
// Canonical rendering

std::string Scenario::canonical_text() const {
  std::ostringstream out;
  const auto dbl = [](double value) { return detail::format_double(value); };

  out << "# canonical scenario v1\n";
  if (!name.empty()) {
    out << "[scenario]\nname = " << name << "\n\n";
  }
  out << "[system]\nn = " << n << "\nc = " << capacity << "\n";

  out << "\n[arrival]\nmodel = " << to_string(arrival.pattern) << "\n";
  out << "distribution = " << core::to_string(arrival.distribution) << "\n";
  switch (arrival.pattern) {
    case ArrivalPattern::kConstant:
      out << "lambda = " << dbl(arrival.lambda) << "\n";
      break;
    case ArrivalPattern::kSinusoid:
      out << "lambda = " << dbl(arrival.lambda) << "\n";
      out << "amplitude = " << dbl(arrival.amplitude) << "\n";
      out << "period = " << arrival.period << "\n";
      out << "phase = " << arrival.phase << "\n";
      break;
    case ArrivalPattern::kBursts:
      out << "lambda = " << dbl(arrival.lambda) << "\n";
      out << "burst-lambda = " << dbl(arrival.burst_lambda) << "\n";
      out << "period = " << arrival.period << "\n";
      out << "burst-width = " << arrival.burst_width << "\n";
      out << "burst-start = " << arrival.burst_start << "\n";
      break;
    case ArrivalPattern::kRegimes: {
      out << "schedule = ";
      for (std::size_t i = 0; i < arrival.regimes.size(); ++i) {
        if (i > 0) out << ";";
        out << arrival.regimes[i].from << ":" << dbl(arrival.regimes[i].lambda);
      }
      out << "\n";
      break;
    }
    case ArrivalPattern::kTrace: {
      // Content, not the file path — two scenarios replaying identical
      // traces from different paths share a digest.
      out << "counts = ";
      for (std::size_t i = 0; i < arrival.trace.size(); ++i) {
        if (i > 0) out << ",";
        out << arrival.trace[i];
      }
      out << "\n";
      out << "loop = " << (arrival.trace_loop ? "on" : "off") << "\n";
      break;
    }
  }
  out << "skew = " << to_string(arrival.skew) << "\n";
  if (arrival.skew == BinSkew::kZipf) {
    out << "zipf-s = " << dbl(arrival.zipf_s) << "\n";
  }

  if (!fault_schedule.empty()) {
    out << "\n[faults]\nschedule = " << fault_schedule << "\n";
    out << "seed = " << fault_seed << "\n";
  }

  if (backpressure != core::BackpressureMode::kNone) {
    out << "\n[backpressure]\nmode = " << core::to_string(backpressure)
        << "\n";
    out << "pool-limit = " << pool_limit << "\n";
    out << "backoff = " << backoff << "\n";
  }

  if (control.enabled()) {
    out << "\n[control]\npolicy = " << control::to_string(control.policy)
        << "\n";
    out << "c-max = " << control.c_max << "\n";
    out << "window = " << control.window << "\n";
    out << "cooldown = " << control.cooldown << "\n";
    out << "hysteresis = " << dbl(control.hysteresis) << "\n";
    out << "admission-target = " << control.admission_target << "\n";
  }

  out << "\n[run]\nrounds = " << rounds << "\nburn-in = " << burn_in
      << "\nseed = " << seed << "\n";

  if (expect.audit || expect.any_bounds()) {
    out << "\n[expect]\n";
    out << "audit = " << (expect.audit ? "on" : "off") << "\n";
    if (expect.audit) out << "audit-every = " << expect.audit_every << "\n";
    if (expect.max_pool_over_n > 0.0) {
      out << "max-pool-over-n = " << dbl(expect.max_pool_over_n) << "\n";
    }
    if (expect.max_wait_mean > 0.0) {
      out << "max-wait-mean = " << dbl(expect.max_wait_mean) << "\n";
    }
    if (expect.max_wait_p99 > 0) {
      out << "max-wait-p99 = " << expect.max_wait_p99 << "\n";
    }
    if (expect.max_wait_max > 0) {
      out << "max-wait-max = " << expect.max_wait_max << "\n";
    }
    if (expect.max_shed != UINT64_MAX) {
      out << "max-shed = " << expect.max_shed << "\n";
    }
  }
  return out.str();
}

std::string Scenario::digest() const {
  const std::uint32_t crc = common::crc32(canonical_text());
  char buf[9];
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 8; ++i) {
    buf[i] = kHex[(crc >> (28 - 4 * i)) & 0xFu];
  }
  buf[8] = '\0';
  return std::string(buf, 8);
}

}  // namespace iba::scenario
