#include "scenario/progress.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"

namespace iba::scenario {

namespace {

constexpr std::string_view kProgressMagic = "iba-scenario-progress";
constexpr std::uint32_t kProgressVersion = 1;

[[noreturn]] void fail_progress(const std::string& message) {
  throw std::runtime_error("scenario progress: " + message);
}

std::string render_progress(const Progress& p) {
  std::ostringstream out;
  out << "digest = " << p.digest << '\n';
  out << "seed = " << p.seed << '\n';
  out << "rounds-done = " << p.rounds_done << '\n';
  out << "audit-rounds = " << p.audit_rounds << '\n';
  out << "audit-violations = " << p.audit_violations << '\n';
  out << "pool-sum = " << p.pool_sum << '\n';
  out << "pool-min = " << p.pool_min << '\n';
  out << "pool-max = " << p.pool_max << '\n';
  out << "pool-last = " << p.pool_last << '\n';
  out << "load-sum = " << p.load_sum << '\n';
  out << "max-load-peak = " << p.max_load_peak << '\n';
  out << "empty-bins-last = " << p.empty_bins_last << '\n';
  out << "requeued-sum = " << p.requeued_sum << '\n';
  out << "faulted-bin-rounds = " << p.faulted_bin_rounds << '\n';
  out << "shed-measured = " << p.shed_measured << '\n';
  out << "oldest-age-max = " << p.oldest_age_max << '\n';
  out << "end\n";
  return out.str();
}

}  // namespace

void write_text_atomic(const std::string& text, const std::string& path,
                       const std::string& context) {
  const auto fail = [&context](const std::string& message) -> void {
    throw std::runtime_error(context + ": " + message);
  };
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail("cannot open for writing: " + tmp);
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
            std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail("write error: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename " + tmp + " -> " + path);
  }
}

void save_progress(const Progress& progress, const std::string& path) {
  const std::string body = render_progress(progress);
  std::ostringstream out;
  out << kProgressMagic << ' ' << kProgressVersion << ' '
      << common::crc32(body) << ' ' << body.size() << '\n'
      << body;
  write_text_atomic(out.str(), path, "scenario progress");
}

Progress load_progress(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_progress("cannot open: " + path);
  std::string header;
  if (!std::getline(in, header)) fail_progress("truncated header");
  std::istringstream head(header);
  std::string magic;
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  if (!(head >> magic >> version >> crc >> bytes) ||
      magic != kProgressMagic) {
    fail_progress("bad header '" + header + "'");
  }
  if (version != kProgressVersion) {
    fail_progress("unsupported version " + std::to_string(version));
  }
  std::string body(bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    fail_progress("truncated body");
  }
  if (common::crc32(body) != crc) fail_progress("CRC mismatch");

  Progress p;
  std::istringstream lines(body);
  std::string line;
  bool saw_end = false;
  const auto parse_u64 = [](const std::string& text, const char* what) {
    try {
      return static_cast<std::uint64_t>(std::stoull(text));
    } catch (const std::exception&) {
      fail_progress(std::string("invalid field ") + what + ": '" + text +
                    "'");
    }
  };
  while (std::getline(lines, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      fail_progress("malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "digest") {
      p.digest = value;
    } else if (key == "seed") {
      p.seed = parse_u64(value, "seed");
    } else if (key == "rounds-done") {
      p.rounds_done = parse_u64(value, "rounds-done");
    } else if (key == "audit-rounds") {
      p.audit_rounds = parse_u64(value, "audit-rounds");
    } else if (key == "audit-violations") {
      p.audit_violations = parse_u64(value, "audit-violations");
    } else if (key == "pool-sum") {
      p.pool_sum = parse_u64(value, "pool-sum");
    } else if (key == "pool-min") {
      p.pool_min = parse_u64(value, "pool-min");
    } else if (key == "pool-max") {
      p.pool_max = parse_u64(value, "pool-max");
    } else if (key == "pool-last") {
      p.pool_last = parse_u64(value, "pool-last");
    } else if (key == "load-sum") {
      p.load_sum = parse_u64(value, "load-sum");
    } else if (key == "max-load-peak") {
      p.max_load_peak = parse_u64(value, "max-load-peak");
    } else if (key == "empty-bins-last") {
      p.empty_bins_last = parse_u64(value, "empty-bins-last");
    } else if (key == "requeued-sum") {
      p.requeued_sum = parse_u64(value, "requeued-sum");
    } else if (key == "faulted-bin-rounds") {
      p.faulted_bin_rounds = parse_u64(value, "faulted-bin-rounds");
    } else if (key == "shed-measured") {
      p.shed_measured = parse_u64(value, "shed-measured");
    } else if (key == "oldest-age-max") {
      p.oldest_age_max = parse_u64(value, "oldest-age-max");
    } else {
      fail_progress("unknown field '" + key + "'");
    }
  }
  if (!saw_end) fail_progress("missing end marker");
  return p;
}

void accumulate_progress(Progress& progress, const core::RoundMetrics& m) {
  progress.pool_sum += m.pool_size;
  if (m.pool_size < progress.pool_min) progress.pool_min = m.pool_size;
  if (m.pool_size > progress.pool_max) progress.pool_max = m.pool_size;
  progress.pool_last = m.pool_size;
  progress.load_sum += m.total_load;
  if (m.max_load > progress.max_load_peak) {
    progress.max_load_peak = m.max_load;
  }
  progress.empty_bins_last = m.empty_bins;
  progress.requeued_sum += m.requeued;
  progress.faulted_bin_rounds += m.faulted_bins;
  progress.shed_measured += m.shed;
  if (m.oldest_pool_age > progress.oldest_age_max) {
    progress.oldest_age_max = m.oldest_pool_age;
  }
}

void fill_artifact(artifact::ResultArtifact& result, const Scenario& scn,
                   const std::string& digest, std::uint64_t seed,
                   const Progress& progress, const RunTotals& totals) {
  result.scenario_name = scn.name;
  result.scenario_digest = digest;
  result.seed = seed;
  result.n = scn.n;
  result.capacity_initial = scn.capacity;
  result.burn_in = scn.burn_in;
  result.rounds = scn.rounds;

  result.generated_total = totals.generated_total;
  result.deleted_total = totals.deleted_total;
  result.shed_total = totals.shed_total;
  result.deferred_end = totals.deferred_end;

  result.pool_sum = progress.pool_sum;
  result.pool_min = progress.pool_min == UINT64_MAX ? 0 : progress.pool_min;
  result.pool_max = progress.pool_max;
  result.pool_last = progress.pool_last;
  result.load_sum = progress.load_sum;
  result.max_load_peak = progress.max_load_peak;
  result.empty_bins_last = progress.empty_bins_last;
  result.requeued_sum = progress.requeued_sum;
  result.faulted_bin_rounds = progress.faulted_bin_rounds;
  result.shed_measured = progress.shed_measured;
  result.oldest_age_max = progress.oldest_age_max;

  result.wait_count = totals.waits.count;
  result.wait_sum = totals.waits.sum;
  result.wait_sumsq_hi = totals.waits.sumsq_hi;
  result.wait_sumsq_lo = totals.waits.sumsq_lo;
  result.wait_max = totals.waits.max;
  result.wait_p50 = totals.wait_p50;
  result.wait_p99 = totals.wait_p99;
  result.wait_histogram = totals.waits.histogram;
}

void evaluate_expectations(const Scenario& scn,
                           artifact::ResultArtifact& artifact) {
  const Expectations& expect = scn.expect;
  const auto add = [&artifact](std::string name, std::string bound,
                               std::string observed, bool pass) {
    artifact.checks.push_back({std::move(name), std::move(bound),
                               std::move(observed), pass});
  };
  const auto fmt = [](double value) { return detail::format_double(value); };

  if (expect.max_pool_over_n > 0.0) {
    // pool_max/n <= bound  ⇔  pool_max <= bound·n (one rounding, same
    // everywhere).
    const bool pass =
        static_cast<double>(artifact.pool_max) <=
        expect.max_pool_over_n * static_cast<double>(artifact.n);
    add("max-pool-over-n", fmt(expect.max_pool_over_n),
        std::to_string(artifact.pool_max) + "/" + std::to_string(artifact.n),
        pass);
  }
  if (expect.max_wait_mean > 0.0) {
    // wait_sum/wait_count <= bound  ⇔  wait_sum <= bound·count.
    const bool pass =
        static_cast<double>(artifact.wait_sum) <=
        expect.max_wait_mean * static_cast<double>(artifact.wait_count);
    add("max-wait-mean", fmt(expect.max_wait_mean),
        std::to_string(artifact.wait_sum) + "/" +
            std::to_string(artifact.wait_count),
        artifact.wait_count == 0 || pass);
  }
  if (expect.max_wait_p99 > 0) {
    add("max-wait-p99", std::to_string(expect.max_wait_p99),
        std::to_string(artifact.wait_p99),
        artifact.wait_p99 <= expect.max_wait_p99);
  }
  if (expect.max_wait_max > 0) {
    add("max-wait-max", std::to_string(expect.max_wait_max),
        std::to_string(artifact.wait_max),
        artifact.wait_max <= expect.max_wait_max);
  }
  if (expect.max_shed != UINT64_MAX) {
    add("max-shed", std::to_string(expect.max_shed),
        std::to_string(artifact.shed_total),
        artifact.shed_total <= expect.max_shed);
  }
}

}  // namespace iba::scenario
