// Scenario runner — executes a parsed Scenario end to end and produces
// the result artifact (docs/SCENARIOS.md):
//
//   build CappedConfig → attach fault plan / Zipf sampler / auditor →
//   burn-in → measured window with integer accumulators → evaluate
//   [expect] bounds → artifact::ResultArtifact.
//
// Determinism contract: the artifact bytes depend only on (scenario
// semantics, seed). Kernel, shard count, checkpoint cadence and
// kill-and-resume leave them unchanged:
//  * kernels/shards — byte-identical by the process's decide-before-draw
//    discipline (every random draw comes from the master engine in a
//    fixed order, including through a BinChoiceSampler);
//  * resume — the process checkpoint (format v3, incl. fault/control
//    state and cumulative waits) carries the trajectory, and a small
//    `<path>.progress` sidecar (CRC-bound) carries the runner's own
//    measured-window accumulators, so a killed run finishes with the
//    exact accumulator values of the uninterrupted one;
//  * accumulators are exact u64 sums/extrema — no floating-point
//    round-off to reorder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "core/policies.hpp"
#include "scenario/scenario.hpp"

namespace iba::scenario {

/// Execution knobs of one run — everything here is free to vary without
/// changing the artifact bytes (that is what the determinism tests
/// assert). Seed overrides *do* change the bytes, deliberately.
struct RunOptions {
  std::optional<core::RoundKernel> kernel;  ///< override [system] kernel
  std::optional<std::uint32_t> shards;      ///< override [system] shards
  std::optional<std::uint64_t> seed;        ///< override [run] seed

  std::string checkpoint_out;  ///< checkpoint path ("" = no checkpoints)
  /// Checkpoint cadence in rounds; 0 adopts the scenario's
  /// checkpoint-every. Only active with a checkpoint_out path.
  std::uint64_t checkpoint_every = 0;
  std::string resume;  ///< checkpoint to resume from ("" = fresh run)
  /// Stop (checkpoint and return, complete = false) once this many
  /// total rounds — burn-in included — have run. 0 = run to the end.
  /// Requires checkpoint_out. For kill-and-resume testing.
  std::uint64_t stop_after = 0;

  /// Write the full multi-tier time series here once the run completes
  /// ("" = off). Forces recording on even without a [record] section.
  /// Content is a pure function of (scenario semantics, seed) — the
  /// determinism contract above extends to these bytes.
  std::string timeseries_out;
  /// Arm the flight recorder; the postmortem bundle lands here when a
  /// trigger fires ("" = off). Bundle bytes obey the same determinism
  /// contract (the resume-mismatch bundle, describing a broken resume,
  /// is the one deliberate exception).
  std::string flight_recorder;
  /// Fire this trigger (a telemetry::trigger_name) after the run
  /// completes, for exercising the bundle path in tests and CI. Ignored
  /// when a real trigger already fired. "" = off.
  std::string debug_trigger;
};

/// What one run produced. `artifact` is only meaningful when `complete`.
struct RunOutcome {
  artifact::ResultArtifact artifact;
  bool complete = true;         ///< false when stop_after cut the run
  bool audit_ok = true;         ///< auditor found no violations
  bool expectations_ok = true;  ///< every [expect] bound held
  std::uint64_t rounds_done = 0;
  std::vector<std::string> failures;  ///< human-readable violation lines

  /// The exit-code contract for CLI front-ends: 3 on audit or
  /// expectation violations, 0 otherwise.
  [[nodiscard]] bool ok() const noexcept {
    return audit_ok && expectations_ok;
  }
};

/// Runs `scenario` under `options`. Throws common::ContractViolation on
/// inconsistent options (stop_after without checkpoint_out, scalar
/// kernel with shards, resume mismatch) and std::runtime_error on IO
/// failures; fault schedules that do not fit the geometry surface as
/// fault::ScheduleError.
[[nodiscard]] RunOutcome run_scenario(const Scenario& scenario,
                                      const RunOptions& options = {});

}  // namespace iba::scenario
