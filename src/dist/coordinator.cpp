#include "dist/coordinator.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "dist/checkpoint.hpp"
#include "net/socket.hpp"
#include "rng/bounded.hpp"
#include "rng/distributions.hpp"
#include "sim/checkpoint.hpp"

namespace iba::dist {

Coordinator::Coordinator(const core::CappedConfig& config,
                         core::Engine engine, std::vector<int> worker_fds,
                         const CoordinatorOptions& options, bool defer_init)
    : config_(config), engine_(engine), options_(options) {
  config_.validate();
  validate_dist_config();
  IBA_EXPECT(!worker_fds.empty() && worker_fds.size() <= 0xFFFFu,
             "Coordinator: worker count must lie in [1, 65535]");
  IBA_EXPECT(worker_fds.size() <= config_.n,
             "Coordinator: more workers than bins");
  links_.resize(worker_fds.size());
  const std::uint64_t workers = worker_fds.size();
  split_base_ = config_.n / workers;
  split_rem_ = config_.n % workers;
  split_wide_end_ = split_rem_ * (split_base_ + 1);
  for (std::uint64_t w = 0; w < workers; ++w) {
    links_[w].fd = worker_fds[w];  // provisional; hello reorders below
    links_[w].bin_lo = w * split_base_ + (w < split_rem_ ? w : split_rem_);
    links_[w].bin_count = split_base_ + (w < split_rem_ ? 1 : 0);
  }
  // The hello handshake must see the fds in accept order, not slot
  // order — keep the raw list around until init maps them.
  if (config_.control.enabled()) {
    controller_ = std::make_unique<control::Controller>(
        config_.control, config_.n, config_.pool_limit);
  }
  if (!defer_init) {
    init_workers("");
  }
}

Coordinator::Coordinator(const core::CappedConfig& config,
                         core::Engine engine, std::vector<int> worker_fds,
                         const CoordinatorOptions& options)
    : Coordinator(config, engine, std::move(worker_fds), options, false) {}

Coordinator::Coordinator(const core::CappedSnapshot& snapshot,
                         std::vector<int> worker_fds,
                         const std::string& resume_base,
                         const CoordinatorOptions& options)
    : Coordinator(snapshot.config, core::Engine(snapshot.engine_state),
                  std::move(worker_fds), options, true) {
  round_ = snapshot.round;
  generated_total_ = snapshot.generated_total;
  deleted_total_ = snapshot.deleted_total;
  shed_total_ = snapshot.shed_total;
  for (const auto& bucket : snapshot.pool) {
    pool_.add(bucket.label, bucket.count);
  }
  for (const auto& bucket : snapshot.deferred) {
    IBA_EXPECT(deferred_.empty() || deferred_.back().ready <= bucket.ready,
               "Coordinator: deferred buckets must be ready-ordered");
    deferred_.push_back(bucket);
    deferred_total_ += bucket.count;
  }
  wait_moments_ = stats::UintMoments::from_parts(
      snapshot.waits.count, snapshot.waits.sum, snapshot.waits.sumsq_hi,
      snapshot.waits.sumsq_lo);
  wait_histogram_ = stats::Log2Histogram::from_counts(
      snapshot.waits.histogram, snapshot.waits.max);
  if (controller_ != nullptr) controller_->restore(snapshot.controller);
  last_saved_round_ = round_;  // the generation being resumed from
  init_workers(resume_base);
}

void Coordinator::validate_dist_config() const {
  IBA_EXPECT(config_.capacity != core::CappedConfig::kInfiniteCapacity,
             "Coordinator: distributed runs require finite capacity");
  IBA_EXPECT(config_.failure_probability == 0.0,
             "Coordinator: stochastic bin failures are not distributed "
             "(the failure coins would have to ship per round)");
  IBA_EXPECT(config_.deletion == core::DeletionDiscipline::kFifo,
             "Coordinator: distributed runs require FIFO deletion");
  IBA_EXPECT(config_.acceptance == core::AcceptanceOrder::kOldestFirst,
             "Coordinator: distributed runs require oldest-first "
             "acceptance");
}

void Coordinator::init_workers(const std::string& resume_base) {
  // Hello pass: each connection announces its bin-range slot; map fds
  // to slots, rejecting duplicates and out-of-range indices.
  const std::uint32_t workers = this->workers();
  std::vector<int> fd_of(workers, -1);
  std::vector<std::uint8_t> payload;
  for (std::uint32_t i = 0; i < workers; ++i) {
    const int fd = links_[i].fd;
    read_worker_frame(i, kMsgHello, payload);
    net::WireReader in(payload);
    const HelloMsg hello = decode_hello(in);
    if (hello.version != kProtocolVersion) {
      throw WorkerLost(i, "protocol version " +
                              std::to_string(hello.version) + " (want " +
                              std::to_string(kProtocolVersion) + ")");
    }
    if (hello.worker >= workers || fd_of[hello.worker] != -1) {
      throw WorkerLost(i, "bad or duplicate worker index " +
                              std::to_string(hello.worker));
    }
    fd_of[hello.worker] = fd;
  }
  for (std::uint32_t w = 0; w < workers; ++w) links_[w].fd = fd_of[w];

  for (std::uint32_t w = 0; w < workers; ++w) {
    InitMsg init;
    init.n = config_.n;
    init.bin_lo = links_[w].bin_lo;
    init.bin_count = links_[w].bin_count;
    init.capacity = config_.capacity;
    init.round = round_;
    if (!resume_base.empty()) {
      init.resume_shard = shard_path(resume_base, round_, w);
    }
    try {
      send_init(links_[w].fd, init);
    } catch (const net::PeerClosed&) {
      throw WorkerLost(w, "hung up during init");
    }
  }
  std::uint64_t restored_load = 0;
  for (std::uint32_t w = 0; w < workers; ++w) {
    read_worker_frame(w, kMsgInitAck, payload);
    net::WireReader in(payload);
    const InitAckMsg ack = decode_init_ack(in);
    if (ack.round != round_) {
      throw WorkerLost(w, "init ack for round " + std::to_string(ack.round) +
                              " (want " + std::to_string(round_) + ")");
    }
    restored_load += ack.total_load;
  }
  // Ball conservation across the restored shards: everything ever
  // generated is in the pool, in a bin, deleted, shed, or deferred.
  const std::uint64_t expected = generated_total_ - pool_.total() -
                                 deleted_total_ - shed_total_ -
                                 deferred_total_;
  IBA_EXPECT(restored_load == expected,
             "Coordinator: restored shard load breaks ball conservation");
}

void Coordinator::read_worker_frame(std::uint32_t worker, std::uint32_t want,
                                    std::vector<std::uint8_t>& payload) {
  const int fd = links_[worker].fd;
  if (!net::wait_readable(fd, options_.timeout_ms)) {
    throw WorkerLost(worker, "no response within " +
                                 std::to_string(options_.timeout_ms) +
                                 " ms (crashed or stalled)");
  }
  std::uint32_t type = 0;
  bool open = false;
  try {
    open = net::read_frame(fd, type, payload);
  } catch (const net::PeerClosed&) {
    throw WorkerLost(worker, "connection lost mid-frame");
  } catch (const net::FrameError& error) {
    throw WorkerLost(worker, std::string("frame error: ") + error.what());
  }
  if (!open) throw WorkerLost(worker, "hung up");
  if (type != want) {
    throw WorkerLost(worker, "sent message type " + std::to_string(type) +
                                 " (want " + std::to_string(want) + ")");
  }
}

void Coordinator::apply_control() {
  if (controller_ == nullptr) return;
  const auto decision =
      controller_->decide(round_ + 1, config_.capacity, config_.pool_limit);
  if (!decision) return;
  if (decision->capacity != config_.capacity) {
    IBA_EXPECT(decision->capacity >= 1 && decision->capacity <= 0xFFFFu,
               "Coordinator: capacity must lie in [1, 65535]");
    // Workers widen their storage on demand when the round frame
    // carries a larger bound; shrink is drain-based, as in Capped.
    config_.capacity = decision->capacity;
  }
  if (decision->pool_limit != 0 &&
      decision->pool_limit != config_.pool_limit) {
    config_.pool_limit = decision->pool_limit;
  }
}

std::uint64_t Coordinator::sample_arrivals() {
  switch (config_.arrival) {
    case core::ArrivalModel::kDeterministic:
      return config_.lambda_n;
    case core::ArrivalModel::kBinomial:
      return rng::binomial(engine_, config_.n, config_.lambda());
    case core::ArrivalModel::kPoisson:
      return rng::poisson(engine_, static_cast<double>(config_.lambda_n));
  }
  return config_.lambda_n;
}

Coordinator::Admission Coordinator::admit_arrivals(std::uint64_t generated) {
  // Byte-for-byte the admission logic of core::Capped::admit_arrivals —
  // it runs entirely on coordinator state, so distribution changes
  // nothing here.
  Admission adm;
  adm.generated = generated;
  adm.admitted = generated;
  if (config_.backpressure == core::BackpressureMode::kNone) return adm;

  const std::uint64_t next_round = round_ + 1;
  const std::uint64_t limit = config_.pool_limit;
  std::uint64_t free = pool_.total() < limit ? limit - pool_.total() : 0;

  if (!deferred_.empty() && deferred_.front().ready <= next_round) {
    readmit_scratch_.clear();
    while (!deferred_.empty() && deferred_.front().ready <= next_round) {
      core::DeferredBucket bucket = deferred_.front();
      deferred_.pop_front();
      const std::uint64_t take = bucket.count < free ? bucket.count : free;
      if (take > 0) {
        readmit_scratch_.push_back({bucket.label, take});
        free -= take;
        deferred_total_ -= take;
        bucket.count -= take;
      }
      if (bucket.count > 0) {
        bucket.ready = next_round + config_.backoff_rounds;
        deferred_.push_back(bucket);
      }
    }
    if (!readmit_scratch_.empty()) merge_sorted_into_pool(readmit_scratch_);
  }

  adm.admitted = generated < free ? generated : free;
  const std::uint64_t excess = generated - adm.admitted;
  if (excess > 0) {
    if (config_.backpressure == core::BackpressureMode::kShed) {
      adm.shed = excess;
      shed_total_ += excess;
    } else {
      deferred_.push_back(
          {next_round, excess, next_round + config_.backoff_rounds});
      deferred_total_ += excess;
    }
  }
  return adm;
}

void Coordinator::merge_sorted_into_pool(
    std::span<const queueing::AgedPool::Bucket> entries) {
  merge_scratch_.clear();
  std::size_t i = 0;
  for (const auto& bucket : pool_.buckets()) {
    while (i < entries.size() && entries[i].label < bucket.label) {
      merge_scratch_.add(entries[i].label, entries[i].count);
      ++i;
    }
    if (i < entries.size() && entries[i].label == bucket.label) {
      merge_scratch_.add(bucket.label, bucket.count + entries[i].count);
      ++i;
    } else {
      merge_scratch_.add(bucket.label, bucket.count);
    }
  }
  for (; i < entries.size(); ++i) {
    merge_scratch_.add(entries[i].label, entries[i].count);
  }
  pool_.swap(merge_scratch_);
}

std::uint32_t Coordinator::owner_of(std::uint32_t bin) const noexcept {
  // Inverse of the contiguous range split (the sharded kernel's
  // convention): the first `rem` workers own base+1 bins.
  return bin < split_wide_end_
             ? static_cast<std::uint32_t>(bin / (split_base_ + 1))
             : static_cast<std::uint32_t>(
                   split_rem_ + (bin - split_wide_end_) / split_base_);
}

core::RoundMetrics Coordinator::step() {
  // Decide → draw → ship, in exactly core::Capped::step()'s order, so
  // the engine consumes the identical stream.
  apply_control();
  const std::uint64_t generated = sample_arrivals();
  const Admission adm = admit_arrivals(generated);
  const std::uint64_t nu = pool_.total() + adm.admitted;
  choice_scratch_.resize(nu);
  if (bin_sampler_ != nullptr) {
    bin_sampler_->fill(engine_, choice_scratch_);
  } else {
    rng::fill_bounded(engine_, choice_scratch_, config_.n);
  }

  ++round_;
  pool_.add(round_, adm.admitted);
  generated_total_ += generated;

  core::RoundMetrics m;
  m.round = round_;
  m.generated = generated;
  m.shed = adm.shed;
  m.thrown = pool_.total();

  // Partition the throws by owning worker, bucket-major in the global
  // visit order (pool buckets are contiguous index ranges of the choice
  // vector, oldest first).
  const auto& buckets = pool_.buckets();
  const std::uint32_t workers = this->workers();
  round_scratch_.resize(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    RoundMsg& msg = round_scratch_[w];
    msg.round = round_;
    msg.capacity = config_.capacity;
    msg.labels.clear();
    for (auto& bins : msg.bins) bins.clear();
    msg.bins.resize(buckets.size());
    for (const auto& bucket : buckets) msg.labels.push_back(bucket.label);
  }
  {
    std::size_t idx = 0;
    std::size_t b = 0;
    for (const auto& bucket : buckets) {
      for (std::uint64_t k = 0; k < bucket.count; ++k) {
        const std::uint32_t bin = choice_scratch_[idx++];
        const std::uint32_t w = owner_of(bin);
        round_scratch_[w].bins[b].push_back(
            bin - static_cast<std::uint32_t>(links_[w].bin_lo));
      }
      ++b;
    }
    IBA_ASSERT(idx == nu);
  }

  // Ship every frame before collecting any result, so the workers'
  // accept+delete passes overlap.
  for (std::uint32_t w = 0; w < workers; ++w) {
    try {
      send_round(links_[w].fd, round_scratch_[w]);
    } catch (const net::PeerClosed&) {
      throw WorkerLost(w, "hung up before round " + std::to_string(round_));
    }
  }

  // Collect and merge. Every merged quantity is order-independent
  // (sums, max, exact integer moments, histogram counts), so merging in
  // worker order equals the single process's bin-order accumulation.
  survivors_.clear();
  std::vector<std::uint64_t> rejected(buckets.size(), 0);
  std::uint64_t wait_sum = 0;
  std::vector<std::uint8_t> payload;
  for (std::uint32_t w = 0; w < workers; ++w) {
    read_worker_frame(w, kMsgRoundResult, payload);
    net::WireReader in(payload);
    const RoundResultMsg result = decode_round_result(in);
    if (result.round != round_ || result.rejected.size() != buckets.size()) {
      throw WorkerLost(w, "round result does not match round " +
                              std::to_string(round_));
    }
    m.accepted += result.accepted;
    m.deleted += result.deleted;
    m.total_load += result.total_load;
    m.max_load = std::max(m.max_load, result.max_load);
    m.empty_bins += static_cast<std::uint32_t>(result.empty_bins);
    m.wait_count += result.wait_count;
    wait_sum += result.wait_sum;
    m.wait_max = std::max(m.wait_max, result.wait_max);
    wait_moments_.merge(stats::UintMoments::from_parts(
        result.wait_count, result.wait_sum, result.wait_sumsq_hi,
        result.wait_sumsq_lo));
    wait_histogram_.merge(stats::Log2Histogram::from_counts(
        result.wait_histogram, result.wait_max));
    for (std::size_t i = 0; i < rejected.size(); ++i) {
      rejected[i] += result.rejected[i];
    }
  }
  // Per-round wait sums sit far below 2^53, so this double equals the
  // scalar path's per-ball accumulation exactly.
  m.wait_sum = static_cast<double>(wait_sum);

  // Survivors re-added oldest-first (AgedPool's label-order invariant).
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    survivors_.add(round_scratch_[0].labels[i], rejected[i]);
  }
  pool_.swap(survivors_);

  deleted_total_ += m.deleted;
  m.pool_size = pool_.total();
  m.deferred = deferred_total_;
  m.oldest_pool_age = pool_.oldest_age(round_);

  if (controller_ != nullptr) controller_->observe(m);
  return m;
}

core::CappedSnapshot Coordinator::snapshot() const {
  core::CappedSnapshot snap;
  snap.config = config_;
  snap.round = round_;
  snap.generated_total = generated_total_;
  snap.deleted_total = deleted_total_;
  snap.shed_total = shed_total_;
  snap.engine_state = engine_.state();
  snap.pool.assign(pool_.buckets().begin(), pool_.buckets().end());
  snap.deferred.assign(deferred_.begin(), deferred_.end());
  snap.waits.count = wait_moments_.count();
  snap.waits.sum = wait_moments_.sum();
  snap.waits.sumsq_hi = wait_moments_.sumsq_hi();
  snap.waits.sumsq_lo = wait_moments_.sumsq_lo();
  snap.waits.max = wait_histogram_.max();
  snap.waits.histogram = wait_histogram_.counts();
  if (controller_ != nullptr) snap.controller = controller_->state();
  // Bins live in the shard files; n empty queues keep the snapshot
  // well-formed for checkpoint v3 (they serialize compactly).
  snap.bin_queues.resize(config_.n);
  return snap;
}

core::CappedWaitState Coordinator::wait_state() const {
  core::CappedWaitState waits;
  waits.count = wait_moments_.count();
  waits.sum = wait_moments_.sum();
  waits.sumsq_hi = wait_moments_.sumsq_hi();
  waits.sumsq_lo = wait_moments_.sumsq_lo();
  waits.max = wait_histogram_.max();
  waits.histogram = wait_histogram_.counts();
  return waits;
}

void Coordinator::reset_wait_stats() noexcept {
  wait_moments_.reset();
  wait_histogram_ = stats::Log2Histogram{};
}

void Coordinator::set_lambda_n(std::uint64_t lambda_n) {
  IBA_EXPECT(lambda_n <= config_.n,
             "Coordinator: lambda_n must not exceed n (lambda <= 1)");
  config_.lambda_n = lambda_n;
}

void Coordinator::save_checkpoint(const std::string& base,
                                  const std::string& digest,
                                  std::uint64_t seed) {
  const std::uint32_t workers = this->workers();
  // Shard files first (remote, overlapped), each order carrying the
  // generation-before-last's file as the gc victim — the manifest on
  // disk never references it at any crash point.
  for (std::uint32_t w = 0; w < workers; ++w) {
    CheckpointMsg order;
    order.round = round_;
    order.path = shard_path(base, round_, w);
    if (prev_saved_round_ != kNoGeneration) {
      order.gc_path = shard_path(base, prev_saved_round_, w);
    }
    try {
      send_checkpoint(links_[w].fd, order);
    } catch (const net::PeerClosed&) {
      throw WorkerLost(w, "hung up before checkpoint");
    }
  }
  Manifest manifest;
  manifest.round = round_;
  manifest.n = config_.n;
  manifest.workers = workers;
  manifest.digest = digest;
  manifest.seed = seed;
  manifest.shard_crcs.resize(workers);
  std::uint64_t persisted = 0;
  std::vector<std::uint8_t> payload;
  for (std::uint32_t w = 0; w < workers; ++w) {
    read_worker_frame(w, kMsgCheckpointAck, payload);
    net::WireReader in(payload);
    const CheckpointAckMsg ack = decode_checkpoint_ack(in);
    if (ack.round != round_) {
      throw WorkerLost(w, "checkpoint ack for round " +
                              std::to_string(ack.round) + " (want " +
                              std::to_string(round_) + ")");
    }
    manifest.shard_crcs[w] = ack.crc;
    persisted += ack.balls;
  }
  const std::uint64_t expected = generated_total_ - pool_.total() -
                                 deleted_total_ - shed_total_ -
                                 deferred_total_;
  IBA_EXPECT(persisted == expected,
             "Coordinator: persisted shard load breaks ball conservation");

  sim::save_checkpoint(snapshot(), coord_path(base, round_));
  if (prev_saved_round_ != kNoGeneration) {
    const std::string stale = coord_path(base, prev_saved_round_);
    std::remove(stale.c_str());
    // The runner parks its progress sidecar beside the generation's
    // coordinator file; collect it with the same deferral.
    std::remove((stale + ".progress").c_str());
  }

  // Commit point: only now does any reader see this generation.
  save_manifest(manifest, manifest_path(base));
  prev_saved_round_ = last_saved_round_;
  last_saved_round_ = round_;
}

void Coordinator::shutdown() noexcept {
  for (const Link& link : links_) {
    if (link.fd < 0) continue;
    try {
      send_shutdown(link.fd);
    } catch (...) {
      // Best-effort: a worker that already died is someone else's exit.
    }
  }
}

}  // namespace iba::dist
