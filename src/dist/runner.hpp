// run_distributed — the coordinator-side scenario loop (docs/
// DISTRIBUTED.md): drives a dist::Coordinator through a parsed Scenario
// exactly as scenario::run_scenario drives a core::Capped, reusing the
// same Progress accumulators, artifact assembly and expectation
// evaluation (scenario/progress.hpp). That sharing, plus the
// coordinator's byte-identical round replication, is why a distributed
// run's artifact bytes equal the single-process run's for the same
// (scenario, seed) — the acceptance property the differential tests and
// the CI dist-smoke job hold us to.
//
// Not supported distributed (guarded with clear errors): fault
// schedules (worker-side coins would fork the engine stream), the
// invariant auditor and ball tracing (both need the full in-process
// state), and recording sidecars. Backpressure, adaptive control,
// arrival models and Zipf skew all run coordinator-side and work
// unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace iba::dist {

struct DistRunOptions {
  std::optional<std::uint64_t> seed;  ///< override [run] seed

  /// Checkpoint generation base path ("" = no checkpoints). Files land
  /// as `<base>.r<R>.{coord,coord.progress,shard<w>}` + `<base>.manifest`.
  std::string checkpoint_base;
  /// Cadence in rounds; 0 adopts the scenario's checkpoint-every.
  std::uint64_t checkpoint_every = 0;
  /// Resume from checkpoint_base's committed manifest generation.
  bool resume = false;
  /// Stop (checkpoint and return, complete = false) after this many
  /// total rounds. Requires checkpoint_base. For kill-and-resume tests.
  std::uint64_t stop_after = 0;

  /// Poll deadline on every expected worker response, ms.
  int timeout_ms = 30'000;
  /// Sleep this long after every round (CI uses it to make "kill a
  /// worker mid-run" land mid-run reliably). 0 = full speed.
  std::uint64_t throttle_us = 0;
  /// Called after every completed round (tests hook failure injection
  /// and progress probes here). May be empty.
  std::function<void(std::uint64_t round)> on_round;
};

/// Runs `scenario` across the connected workers. `worker_fds` are the
/// accepted sockets (any order; the hello handshake assigns ranges) and
/// stay owned by the caller. Throws common::ContractViolation on
/// unsupported scenario features or broken resume identity, WorkerLost
/// when a worker dies or stalls, and std::runtime_error on IO failures.
[[nodiscard]] scenario::RunOutcome run_distributed(
    const scenario::Scenario& scenario, const std::vector<int>& worker_fds,
    const DistRunOptions& options = {});

}  // namespace iba::dist
