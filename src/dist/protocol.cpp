#include "dist/protocol.hpp"

namespace iba::dist {

namespace {

void write_u32_list(net::WireWriter& out,
                    const std::vector<std::uint32_t>& values) {
  out.u32(static_cast<std::uint32_t>(values.size()));
  for (const std::uint32_t v : values) out.u32(v);
}

std::vector<std::uint32_t> read_u32_list(net::WireReader& in,
                                         const char* what) {
  const std::uint32_t count = in.u32(what);
  std::vector<std::uint32_t> values(count);
  for (std::uint32_t i = 0; i < count; ++i) values[i] = in.u32(what);
  return values;
}

}  // namespace

void send_hello(int fd, const HelloMsg& msg) {
  net::WireWriter out;
  out.u32(msg.version);
  out.u32(msg.worker);
  net::write_frame(fd, kMsgHello, out.span());
}

HelloMsg decode_hello(net::WireReader& in) {
  HelloMsg msg;
  msg.version = in.u32("hello.version");
  msg.worker = in.u32("hello.worker");
  in.expect_end("hello");
  return msg;
}

void send_init(int fd, const InitMsg& msg) {
  net::WireWriter out;
  out.u64(msg.n);
  out.u64(msg.bin_lo);
  out.u64(msg.bin_count);
  out.u32(msg.capacity);
  out.u64(msg.round);
  out.str(msg.resume_shard);
  net::write_frame(fd, kMsgInit, out.span());
}

InitMsg decode_init(net::WireReader& in) {
  InitMsg msg;
  msg.n = in.u64("init.n");
  msg.bin_lo = in.u64("init.bin_lo");
  msg.bin_count = in.u64("init.bin_count");
  msg.capacity = in.u32("init.capacity");
  msg.round = in.u64("init.round");
  msg.resume_shard = in.str("init.resume_shard");
  in.expect_end("init");
  return msg;
}

void send_init_ack(int fd, const InitAckMsg& msg) {
  net::WireWriter out;
  out.u64(msg.round);
  out.u64(msg.total_load);
  net::write_frame(fd, kMsgInitAck, out.span());
}

InitAckMsg decode_init_ack(net::WireReader& in) {
  InitAckMsg msg;
  msg.round = in.u64("init_ack.round");
  msg.total_load = in.u64("init_ack.total_load");
  in.expect_end("init_ack");
  return msg;
}

void send_round(int fd, const RoundMsg& msg) {
  net::WireWriter out;
  std::size_t throws = 0;
  for (const auto& bucket : msg.bins) throws += bucket.size();
  out.reserve(24 + msg.labels.size() * 16 + throws * 4);
  out.u64(msg.round);
  out.u32(msg.capacity);
  out.u32(static_cast<std::uint32_t>(msg.labels.size()));
  for (std::size_t b = 0; b < msg.labels.size(); ++b) {
    out.u64(msg.labels[b]);
    write_u32_list(out, msg.bins[b]);
  }
  net::write_frame(fd, kMsgRound, out.span());
}

RoundMsg decode_round(net::WireReader& in) {
  RoundMsg msg;
  msg.round = in.u64("round.round");
  msg.capacity = in.u32("round.capacity");
  const std::uint32_t buckets = in.u32("round.buckets");
  msg.labels.resize(buckets);
  msg.bins.resize(buckets);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    msg.labels[b] = in.u64("round.label");
    msg.bins[b] = read_u32_list(in, "round.bins");
  }
  in.expect_end("round");
  return msg;
}

void send_round_result(int fd, const RoundResultMsg& msg) {
  net::WireWriter out;
  out.u64(msg.round);
  out.u64(msg.accepted);
  out.u64(msg.deleted);
  out.u64(msg.total_load);
  out.u64(msg.max_load);
  out.u64(msg.empty_bins);
  out.u64(msg.wait_count);
  out.u64(msg.wait_sum);
  out.u64(msg.wait_sumsq_hi);
  out.u64(msg.wait_sumsq_lo);
  out.u64(msg.wait_max);
  out.u64_vec(msg.wait_histogram);
  out.u64_vec(msg.rejected);
  net::write_frame(fd, kMsgRoundResult, out.span());
}

RoundResultMsg decode_round_result(net::WireReader& in) {
  RoundResultMsg msg;
  msg.round = in.u64("result.round");
  msg.accepted = in.u64("result.accepted");
  msg.deleted = in.u64("result.deleted");
  msg.total_load = in.u64("result.total_load");
  msg.max_load = in.u64("result.max_load");
  msg.empty_bins = in.u64("result.empty_bins");
  msg.wait_count = in.u64("result.wait_count");
  msg.wait_sum = in.u64("result.wait_sum");
  msg.wait_sumsq_hi = in.u64("result.wait_sumsq_hi");
  msg.wait_sumsq_lo = in.u64("result.wait_sumsq_lo");
  msg.wait_max = in.u64("result.wait_max");
  msg.wait_histogram = in.u64_vec("result.wait_histogram");
  msg.rejected = in.u64_vec("result.rejected");
  in.expect_end("result");
  return msg;
}

void send_checkpoint(int fd, const CheckpointMsg& msg) {
  net::WireWriter out;
  out.u64(msg.round);
  out.str(msg.path);
  out.str(msg.gc_path);
  net::write_frame(fd, kMsgCheckpoint, out.span());
}

CheckpointMsg decode_checkpoint(net::WireReader& in) {
  CheckpointMsg msg;
  msg.round = in.u64("checkpoint.round");
  msg.path = in.str("checkpoint.path");
  msg.gc_path = in.str("checkpoint.gc_path");
  in.expect_end("checkpoint");
  return msg;
}

void send_checkpoint_ack(int fd, const CheckpointAckMsg& msg) {
  net::WireWriter out;
  out.u64(msg.round);
  out.u32(msg.crc);
  out.u64(msg.balls);
  net::write_frame(fd, kMsgCheckpointAck, out.span());
}

CheckpointAckMsg decode_checkpoint_ack(net::WireReader& in) {
  CheckpointAckMsg msg;
  msg.round = in.u64("checkpoint_ack.round");
  msg.crc = in.u32("checkpoint_ack.crc");
  msg.balls = in.u64("checkpoint_ack.balls");
  in.expect_end("checkpoint_ack");
  return msg;
}

void send_shutdown(int fd) {
  net::write_frame(fd, kMsgShutdown, {});
}

}  // namespace iba::dist
