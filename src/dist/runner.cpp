#include "dist/runner.hpp"

#include <unistd.h>

#include <memory>

#include "common/assert.hpp"
#include "dist/checkpoint.hpp"
#include "dist/coordinator.hpp"
#include "scenario/progress.hpp"
#include "sim/checkpoint.hpp"

namespace iba::dist {

namespace {

std::string progress_path(const std::string& base, std::uint64_t round) {
  return coord_path(base, round) + ".progress";
}

}  // namespace

scenario::RunOutcome run_distributed(const scenario::Scenario& scn,
                                     const std::vector<int>& worker_fds,
                                     const DistRunOptions& options) {
  IBA_EXPECT(scn.fault_schedule.empty(),
             "run_distributed: fault schedules are not supported "
             "distributed (worker-side coins would fork the engine "
             "stream)");
  IBA_EXPECT(!scn.expect.audit,
             "run_distributed: the invariant auditor needs the full "
             "in-process state; run the audit single-process");
  IBA_EXPECT(options.stop_after == 0 || !options.checkpoint_base.empty(),
             "run_distributed: stop_after requires checkpoint_base");
  IBA_EXPECT(!options.resume || !options.checkpoint_base.empty(),
             "run_distributed: resume requires checkpoint_base");

  const std::uint64_t seed = options.seed.value_or(scn.seed);
  const std::uint64_t total_rounds = scn.burn_in + scn.rounds;
  IBA_EXPECT(options.stop_after == 0 || options.stop_after < total_rounds,
             "run_distributed: stop_after must precede the scenario's end");
  const std::uint64_t checkpoint_every =
      !options.checkpoint_base.empty()
          ? (options.checkpoint_every > 0 ? options.checkpoint_every
                                          : scn.checkpoint_every)
          : 0;
  const std::string digest = scn.digest();

  CoordinatorOptions copts;
  copts.timeout_ms = options.timeout_ms;

  std::unique_ptr<Coordinator> coordinator;
  scenario::Progress progress;

  if (options.resume) {
    const Manifest manifest =
        load_manifest(manifest_path(options.checkpoint_base));
    IBA_EXPECT(manifest.digest == digest,
               "run_distributed: checkpoint belongs to a different "
               "scenario (digest mismatch)");
    IBA_EXPECT(manifest.seed == seed,
               "run_distributed: checkpoint belongs to a different seed");
    IBA_EXPECT(manifest.n == scn.n,
               "run_distributed: checkpoint geometry mismatch (n)");
    IBA_EXPECT(manifest.workers == worker_fds.size(),
               "run_distributed: checkpoint was taken with " +
                   std::to_string(manifest.workers) + " workers");
    const core::CappedSnapshot snapshot = sim::load_checkpoint(
        coord_path(options.checkpoint_base, manifest.round));
    IBA_EXPECT(snapshot.round == manifest.round,
               "run_distributed: coordinator file and manifest disagree");
    progress = scenario::load_progress(
        progress_path(options.checkpoint_base, manifest.round));
    IBA_EXPECT(progress.digest == digest && progress.seed == seed,
               "run_distributed: progress sidecar identity mismatch");
    IBA_EXPECT(progress.rounds_done == manifest.round,
               "run_distributed: progress sidecar and manifest disagree");
    IBA_EXPECT(progress.rounds_done < total_rounds,
               "run_distributed: checkpoint is already past the "
               "scenario's end");
    coordinator = std::make_unique<Coordinator>(
        snapshot, worker_fds, options.checkpoint_base, copts);
  } else {
    core::CappedConfig config;
    config.n = scn.n;
    config.capacity = scn.capacity;
    scn.arrival.apply_to(scn.n, config.arrival, config.lambda_n);
    config.pool_limit = scn.pool_limit;
    config.backpressure = scn.backpressure;
    config.backoff_rounds = scn.backoff;
    config.control = scn.control;
    coordinator = std::make_unique<Coordinator>(
        config, core::Engine(seed), worker_fds, copts);
    progress.digest = digest;
    progress.seed = seed;
  }

  const std::unique_ptr<core::BinChoiceSampler> sampler =
      scn.arrival.make_sampler(scn.n);
  if (sampler != nullptr) coordinator->set_bin_sampler(sampler.get());

  // Progress is saved round-stamped inside the generation, BEFORE the
  // coordinator's manifest commit, so at every crash point the manifest
  // on disk references a complete generation including this sidecar.
  const auto save_state = [&] {
    scenario::save_progress(
        progress, progress_path(options.checkpoint_base, progress.rounds_done));
    coordinator->save_checkpoint(options.checkpoint_base, digest, seed);
  };

  scenario::RunOutcome outcome;
  for (std::uint64_t round = progress.rounds_done + 1; round <= total_rounds;
       ++round) {
    if (scn.arrival.time_varying()) {
      coordinator->set_lambda_n(scn.arrival.rate_at(round, scn.n));
    }
    const core::RoundMetrics m = coordinator->step();
    if (round > scn.burn_in) accumulate_progress(progress, m);
    progress.rounds_done = round;
    if (round == scn.burn_in) coordinator->reset_wait_stats();
    if (checkpoint_every > 0 && round % checkpoint_every == 0 &&
        round != total_rounds) {
      save_state();
    }
    if (options.on_round) options.on_round(round);
    if (options.throttle_us > 0) {
      ::usleep(static_cast<useconds_t>(options.throttle_us));
    }
    if (options.stop_after != 0 && round == options.stop_after) {
      save_state();
      coordinator->shutdown();
      outcome.complete = false;
      outcome.rounds_done = round;
      return outcome;
    }
  }
  outcome.rounds_done = total_rounds;

  // -- assemble the artifact (shared helpers ⇒ byte-identical) ----------
  scenario::RunTotals totals;
  totals.generated_total = coordinator->generated_total();
  totals.deleted_total = coordinator->deleted_total();
  totals.shed_total = coordinator->shed_total();
  totals.deferred_end = coordinator->deferred_total();
  totals.waits = coordinator->wait_state();
  totals.wait_p50 = coordinator->wait_quantile(0.5);
  totals.wait_p99 = coordinator->wait_quantile(0.99);
  artifact::ResultArtifact& result = outcome.artifact;
  scenario::fill_artifact(result, scn, digest, seed, progress, totals);

  if (scn.control.enabled()) {
    const control::ControllerState state = coordinator->controller()->state();
    result.has_control = true;
    result.capacity_final = coordinator->capacity();
    result.control_changes = state.changes;
    result.control_grows = state.grows;
    result.control_shrinks = state.shrinks;
  }

  scenario::evaluate_expectations(scn, result);
  for (const artifact::ExpectationCheck& check : result.checks) {
    if (!check.pass) {
      outcome.expectations_ok = false;
      outcome.failures.push_back("expect: " + check.name + ": bound " +
                                 check.bound + ", observed " +
                                 check.observed);
    }
  }

  if (!options.checkpoint_base.empty()) save_state();
  coordinator->shutdown();
  return outcome;
}

}  // namespace iba::dist
