#include "dist/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"
#include "scenario/progress.hpp"

namespace iba::dist {

namespace {

constexpr std::string_view kShardMagic = "iba-dist-shard";
constexpr std::string_view kManifestMagic = "iba-dist-manifest";
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const std::string& context,
                       const std::string& message) {
  throw std::runtime_error(context + ": " + message);
}

/// Reads one CRC-bound envelope (`<magic> <version> <crc> <bytes>` +
/// body) and returns the validated body.
std::string read_envelope(const std::string& path, std::string_view magic,
                          const std::string& context) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(context, "cannot open: " + path);
  std::string header;
  if (!std::getline(in, header)) fail(context, "truncated header");
  std::istringstream head(header);
  std::string file_magic;
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::size_t bytes = 0;
  if (!(head >> file_magic >> version >> crc >> bytes) ||
      file_magic != magic) {
    fail(context, "bad header '" + header + "'");
  }
  if (version != kVersion) {
    fail(context, "unsupported version " + std::to_string(version));
  }
  std::string body(bytes, '\0');
  in.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    fail(context, "truncated body");
  }
  if (common::crc32(body) != crc) fail(context, "CRC mismatch");
  return body;
}

/// Writes `body` under the envelope, atomically. Returns the body CRC.
std::uint32_t write_envelope(const std::string& body, std::string_view magic,
                             const std::string& path,
                             const std::string& context) {
  const std::uint32_t crc = common::crc32(body);
  std::ostringstream out;
  out << magic << ' ' << kVersion << ' ' << crc << ' ' << body.size()
      << '\n'
      << body;
  scenario::write_text_atomic(out.str(), path, context);
  return crc;
}

std::uint64_t parse_u64(std::istringstream& in, const char* what,
                        const std::string& context) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    fail(context, std::string("truncated/invalid field: ") + what);
  }
  return value;
}

void expect_key(std::istringstream& in, std::string_view key,
                const std::string& context) {
  std::string word, eq;
  if (!(in >> word >> eq) || word != key || eq != "=") {
    fail(context, "expected '" + std::string(key) + " =', got '" + word +
                      " " + eq + "'");
  }
}

}  // namespace

std::string shard_path(const std::string& base, std::uint64_t round,
                       std::uint32_t worker) {
  return base + ".r" + std::to_string(round) + ".shard" +
         std::to_string(worker);
}

std::string coord_path(const std::string& base, std::uint64_t round) {
  return base + ".r" + std::to_string(round) + ".coord";
}

std::string manifest_path(const std::string& base) {
  return base + ".manifest";
}

std::uint32_t save_shard(const ShardState& shard, const std::string& path) {
  std::ostringstream body;
  body << "round = " << shard.round << '\n';
  body << "bin-lo = " << shard.bin_lo << '\n';
  body << "bin-count = " << shard.bin_count << '\n';
  body << "capacity = " << shard.capacity << '\n';
  for (const auto& queue : shard.queues) {
    body << "queue = " << queue.size();
    for (const std::uint64_t label : queue) body << ' ' << label;
    body << '\n';
  }
  body << "end\n";
  return write_envelope(body.str(), kShardMagic, path, "dist shard");
}

ShardState load_shard(const std::string& path) {
  const std::string context = "dist shard";
  const std::string body = read_envelope(path, kShardMagic, context);
  std::istringstream in(body);
  ShardState shard;
  expect_key(in, "round", context);
  shard.round = parse_u64(in, "round", context);
  expect_key(in, "bin-lo", context);
  shard.bin_lo = parse_u64(in, "bin-lo", context);
  expect_key(in, "bin-count", context);
  shard.bin_count = parse_u64(in, "bin-count", context);
  expect_key(in, "capacity", context);
  const std::uint64_t capacity = parse_u64(in, "capacity", context);
  if (capacity < 1 || capacity > 0xFFFFu) {
    fail(context, "capacity out of range");
  }
  shard.capacity = static_cast<std::uint32_t>(capacity);
  shard.queues.resize(shard.bin_count);
  for (auto& queue : shard.queues) {
    expect_key(in, "queue", context);
    const std::uint64_t length = parse_u64(in, "queue length", context);
    if (length > capacity) fail(context, "queue longer than capacity");
    queue.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
      queue.push_back(parse_u64(in, "queue label", context));
    }
  }
  std::string tail;
  if (!(in >> tail) || tail != "end") fail(context, "missing end marker");
  return shard;
}

void save_manifest(const Manifest& manifest, const std::string& path) {
  std::ostringstream body;
  body << "round = " << manifest.round << '\n';
  body << "n = " << manifest.n << '\n';
  body << "workers = " << manifest.workers << '\n';
  body << "digest = " << manifest.digest << '\n';
  body << "seed = " << manifest.seed << '\n';
  body << "shard-crcs =";
  for (const std::uint32_t crc : manifest.shard_crcs) body << ' ' << crc;
  body << '\n';
  body << "end\n";
  write_envelope(body.str(), kManifestMagic, path, "dist manifest");
}

Manifest load_manifest(const std::string& path) {
  const std::string context = "dist manifest";
  const std::string body = read_envelope(path, kManifestMagic, context);
  std::istringstream in(body);
  Manifest manifest;
  expect_key(in, "round", context);
  manifest.round = parse_u64(in, "round", context);
  expect_key(in, "n", context);
  manifest.n = parse_u64(in, "n", context);
  expect_key(in, "workers", context);
  const std::uint64_t workers = parse_u64(in, "workers", context);
  if (workers < 1 || workers > 0xFFFFu) {
    fail(context, "workers out of range");
  }
  manifest.workers = static_cast<std::uint32_t>(workers);
  expect_key(in, "digest", context);
  if (!(in >> manifest.digest)) {
    fail(context, "truncated/invalid field: digest");
  }
  expect_key(in, "seed", context);
  manifest.seed = parse_u64(in, "seed", context);
  expect_key(in, "shard-crcs", context);
  manifest.shard_crcs.resize(manifest.workers);
  for (auto& crc : manifest.shard_crcs) {
    crc = static_cast<std::uint32_t>(parse_u64(in, "shard-crc", context));
  }
  std::string tail;
  if (!(in >> tail) || tail != "end") fail(context, "missing end marker");
  return manifest;
}

}  // namespace iba::dist
