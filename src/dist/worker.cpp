#include "dist/worker.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "dist/checkpoint.hpp"

namespace iba::dist {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("dist worker: " + message);
}

}  // namespace

bool Worker::run() {
  // A coordinator that dies mid-conversation surfaces as PeerClosed on
  // either direction (reading the next command, or writing a response
  // it will never collect). Both are the routine "hung up" outcome of a
  // kill-and-resume drill, not transport corruption.
  try {
    send_hello(fd_, HelloMsg{kProtocolVersion, index_});
    std::uint32_t type = 0;
    std::vector<std::uint8_t> payload;
    while (net::read_frame(fd_, type, payload)) {
      net::WireReader in(payload);
      switch (type) {
        case kMsgInit:
          handle_init(decode_init(in));
          break;
        case kMsgRound:
          handle_round(decode_round(in));
          break;
        case kMsgCheckpoint:
          handle_checkpoint(decode_checkpoint(in));
          break;
        case kMsgShutdown:
          return true;
        default:
          fail("unexpected message type " + std::to_string(type));
      }
    }
  } catch (const net::PeerClosed&) {
    return false;
  }
  return false;  // coordinator hung up
}

void Worker::handle_init(const InitMsg& msg) {
  if (msg.bin_count == 0 || msg.bin_lo + msg.bin_count > msg.n) {
    fail("init: bin range [" + std::to_string(msg.bin_lo) + ", +" +
         std::to_string(msg.bin_count) + ") does not fit n = " +
         std::to_string(msg.n));
  }
  if (msg.capacity < 1 || msg.capacity > 0xFFFFu) {
    fail("init: capacity out of range");
  }
  n_ = msg.n;
  bin_lo_ = msg.bin_lo;
  bin_count_ = msg.bin_count;
  round_ = msg.round;

  std::uint32_t storage = msg.capacity;
  std::optional<ShardState> shard;
  if (!msg.resume_shard.empty()) {
    shard = load_shard(msg.resume_shard);
    if (shard->round != msg.round || shard->bin_lo != msg.bin_lo ||
        shard->bin_count != msg.bin_count) {
      fail("init: shard checkpoint " + msg.resume_shard +
           " does not match the assigned range/round");
    }
    // A checkpoint taken mid-shrink can hold queues longer than the
    // (already lowered) acceptance capacity; size the storage to fit —
    // the acceptance bound arrives per round and drains them naturally.
    if (shard->capacity > storage) storage = shard->capacity;
  }
  table_.emplace(static_cast<std::uint32_t>(bin_count_), storage);
  if (shard.has_value()) {
    for (std::uint32_t bin = 0; bin < bin_count_; ++bin) {
      for (const std::uint64_t label : shard->queues[bin]) {
        table_->push(bin, label);
      }
    }
  }
  send_init_ack(fd_, InitAckMsg{round_, table_->total_load()});
}

void Worker::handle_round(const RoundMsg& msg) {
  if (!table_.has_value()) fail("round before init");
  if (msg.round != round_ + 1) {
    fail("round " + std::to_string(msg.round) + " out of order (at " +
         std::to_string(round_) + ")");
  }
  if (msg.capacity < 1) fail("round: capacity must be positive");
  if (msg.capacity > table_->capacity()) {
    table_->grow_capacity(msg.capacity);
  }

  RoundResultMsg result;
  result.round = msg.round;
  result.rejected.resize(msg.labels.size());

  // Acceptance: the global oldest-first visit order restricted to this
  // range. Each bin accepts while it has room under this round's bound
  // (possibly below a draining bin's current load after a shrink — it
  // then accepts nothing). Acceptance is independent across bins, so
  // replaying only this range's throws reproduces the single-process
  // outcome for these bins exactly.
  for (std::size_t b = 0; b < msg.labels.size(); ++b) {
    const std::uint64_t label = msg.labels[b];
    for (const std::uint32_t bin : msg.bins[b]) {
      if (bin >= bin_count_) fail("round: bin index out of range");
      if (table_->load(bin) < msg.capacity) {
        table_->push(bin, label);
        ++result.accepted;
      } else {
        ++result.rejected[b];
      }
    }
  }

  // Deletion: every non-empty bin serves its FIFO front; the served
  // ball's wait is its age. Draws nothing — this is what lets deletion
  // run worker-side at all.
  wait_moments_ = stats::UintMoments{};
  wait_histogram_ = stats::Log2Histogram{};
  for (std::uint32_t bin = 0; bin < bin_count_; ++bin) {
    if (table_->load(bin) == 0) continue;
    const std::uint64_t label = table_->pop_front(bin);
    const std::uint64_t wait = msg.round - label;
    wait_moments_.add(wait);
    wait_histogram_.add(wait);
    ++result.deleted;
  }

  result.total_load = table_->total_load();
  result.max_load = table_->max_load();
  result.empty_bins = table_->empty_bins();
  result.wait_count = wait_moments_.count();
  result.wait_sum = wait_moments_.sum();
  result.wait_sumsq_hi = wait_moments_.sumsq_hi();
  result.wait_sumsq_lo = wait_moments_.sumsq_lo();
  result.wait_max = wait_histogram_.max();
  result.wait_histogram = wait_histogram_.counts();

  round_ = msg.round;
  ++rounds_served_;
  send_round_result(fd_, result);
}

void Worker::handle_checkpoint(const CheckpointMsg& msg) {
  if (!table_.has_value()) fail("checkpoint before init");
  if (msg.round != round_) {
    fail("checkpoint round " + std::to_string(msg.round) +
         " does not match completed round " + std::to_string(round_));
  }
  ShardState shard;
  shard.round = round_;
  shard.bin_lo = bin_lo_;
  shard.bin_count = bin_count_;
  shard.capacity = table_->capacity();
  shard.queues.resize(bin_count_);
  for (std::uint32_t bin = 0; bin < bin_count_; ++bin) {
    const std::uint32_t load = table_->load(bin);
    auto& queue = shard.queues[bin];
    queue.reserve(load);
    for (std::uint32_t i = 0; i < load; ++i) {
      queue.push_back(table_->peek(bin, i));
    }
  }
  CheckpointAckMsg ack;
  ack.round = round_;
  ack.crc = save_shard(shard, msg.path);
  ack.balls = table_->total_load();
  send_checkpoint_ack(fd_, ack);
  // The collected generation predates the one the on-disk manifest
  // references, so deleting it is safe at every crash point.
  if (!msg.gc_path.empty()) std::remove(msg.gc_path.c_str());
}

}  // namespace iba::dist
