// Wire protocol of the distributed engine: the message vocabulary the
// coordinator and its workers exchange as net:: frames (docs/
// DISTRIBUTED.md).
//
// Topology and determinism: ALL randomness lives on the coordinator —
// it owns the master engine, the pool, backpressure and the control
// plane, exactly like a single-process run. Workers own only their
// contiguous bin range. Per round the coordinator partitions the
// pre-drawn bin choices by owning worker and ships each worker its
// slice (kRound); workers run acceptance + FIFO deletion on their bins
// — which draws nothing — and return exact-integer deltas
// (kRoundResult) the coordinator merges order-independently. The merged
// trajectory is therefore byte-identical to the single-process sharded
// kernel by construction.
//
// The round protocol is synchronous (one kRound → one kRoundResult per
// worker per round), so the coordinator's poll deadline on each
// expected response doubles as the heartbeat: a crashed or stalled
// worker surfaces as a timeout or EOF on the very next message.
//
// Encoding: every message is one frame (net/frame.hpp); payloads are
// fixed-width little-endian scalars via WireWriter/WireReader, so the
// bytes are platform-independent. Decoders bounds-check every field and
// reject trailing bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace iba::dist {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types. Values are wire format — append, never renumber.
enum MsgType : std::uint32_t {
  kMsgHello = 1,          ///< worker → coordinator, on connect
  kMsgInit = 2,           ///< coordinator → worker: bin range + resume
  kMsgInitAck = 3,        ///< worker → coordinator: range loaded
  kMsgRound = 4,          ///< coordinator → worker: one round's throws
  kMsgRoundResult = 5,    ///< worker → coordinator: round deltas
  kMsgCheckpoint = 6,     ///< coordinator → worker: persist your range
  kMsgCheckpointAck = 7,  ///< worker → coordinator: shard written
  kMsgShutdown = 8,       ///< coordinator → worker: clean exit
};

/// Worker introduction: protocol version + which bin-range index this
/// connection serves (workers connect in arbitrary order over TCP).
struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t worker = 0;
};

/// Assigns a worker its contiguous bin range [bin_lo, bin_lo+bin_count)
/// of the global n, sized for `capacity` slots per bin. `round` is the
/// last completed round; a non-empty `resume_shard` names the shard
/// checkpoint whose state (taken at exactly that round) the worker must
/// load before serving.
struct InitMsg {
  std::uint64_t n = 0;
  std::uint64_t bin_lo = 0;
  std::uint64_t bin_count = 0;
  std::uint32_t capacity = 1;
  std::uint64_t round = 0;
  std::string resume_shard;
};

struct InitAckMsg {
  std::uint64_t round = 0;       ///< echoed init round
  std::uint64_t total_load = 0;  ///< balls restored into the range
};

/// One round of throws for one worker, in the global acceptance visit
/// order. `labels[b]` is the generation label of pool bucket b
/// (oldest-first, ascending); `bins[b]` lists the worker-local bin of
/// every throw of bucket b that landed in this worker's range, in
/// arrival order. Bucket-major framing keeps the per-throw cost at one
/// u32 and lets the worker replay acceptance exactly.
struct RoundMsg {
  std::uint64_t round = 0;     ///< the round being executed
  std::uint32_t capacity = 0;  ///< acceptance bound c this round
  std::vector<std::uint64_t> labels;
  std::vector<std::vector<std::uint32_t>> bins;
};

/// A worker's exact per-round deltas. Sums and the wait moments are
/// order-independent integers, so the coordinator's merge is identical
/// to a single process having visited the bins in any order.
struct RoundResultMsg {
  std::uint64_t round = 0;
  std::uint64_t accepted = 0;
  std::uint64_t deleted = 0;
  std::uint64_t total_load = 0;  ///< end-of-round, this range
  std::uint64_t max_load = 0;
  std::uint64_t empty_bins = 0;
  // This round's wait-moment delta (stats::UintMoments parts + dyadic
  // histogram counts + max), merged exactly on the coordinator.
  std::uint64_t wait_count = 0;
  std::uint64_t wait_sum = 0;
  std::uint64_t wait_sumsq_hi = 0;
  std::uint64_t wait_sumsq_lo = 0;
  std::uint64_t wait_max = 0;
  std::vector<std::uint64_t> wait_histogram;
  std::vector<std::uint64_t> rejected;  ///< per bucket, survivors
};

/// Orders a shard checkpoint: write the range's state (at the just-
/// completed `round`) atomically to `path`. `gc_path` names an obsolete
/// shard file from two checkpoint generations back, safe to delete once
/// the new file is durable ("" = nothing to collect) — the manifest on
/// disk never references it at any crash point.
struct CheckpointMsg {
  std::uint64_t round = 0;
  std::string path;
  std::string gc_path;
};

struct CheckpointAckMsg {
  std::uint64_t round = 0;
  std::uint32_t crc = 0;    ///< CRC-32 of the shard body written
  std::uint64_t balls = 0;  ///< balls persisted (conservation echo)
};

// -- frame I/O --------------------------------------------------------
// Each send_* writes exactly one frame; read_message reads one frame
// and returns its type + payload for the caller to decode_*.

void send_hello(int fd, const HelloMsg& msg);
void send_init(int fd, const InitMsg& msg);
void send_init_ack(int fd, const InitAckMsg& msg);
void send_round(int fd, const RoundMsg& msg);
void send_round_result(int fd, const RoundResultMsg& msg);
void send_checkpoint(int fd, const CheckpointMsg& msg);
void send_checkpoint_ack(int fd, const CheckpointAckMsg& msg);
void send_shutdown(int fd);

[[nodiscard]] HelloMsg decode_hello(net::WireReader& in);
[[nodiscard]] InitMsg decode_init(net::WireReader& in);
[[nodiscard]] InitAckMsg decode_init_ack(net::WireReader& in);
[[nodiscard]] RoundMsg decode_round(net::WireReader& in);
[[nodiscard]] RoundResultMsg decode_round_result(net::WireReader& in);
[[nodiscard]] CheckpointMsg decode_checkpoint(net::WireReader& in);
[[nodiscard]] CheckpointAckMsg decode_checkpoint_ack(net::WireReader& in);

}  // namespace iba::dist
