// dist::Worker — one bin-range shard of the distributed engine.
//
// A worker owns bins [bin_lo, bin_lo + bin_count) of the global n and
// nothing else: no engine, no pool, no controller. Each round it
// replays acceptance over the coordinator-shipped throws (bucket-major,
// oldest-first — the global visit order restricted to its range), runs
// the paper's FIFO one-deletion-per-non-empty-bin pass, and reports
// exact integer deltas. Neither phase draws randomness, which is the
// whole reason the distributed trajectory can be byte-identical to the
// single-process one: the coordinator's engine stream never depends on
// worker scheduling or message timing.
//
// The same class serves both deployments: dist_run --role worker wraps
// it around a connected TCP socket; the differential tests run it on a
// thread over one end of a socketpair.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/protocol.hpp"
#include "queueing/bin_table.hpp"
#include "stats/histogram.hpp"
#include "stats/int_moments.hpp"

namespace iba::dist {

class Worker {
 public:
  /// `fd` must be connected to the coordinator; the Worker does not own
  /// it. `index` is this worker's bin-range slot (announced via
  /// kMsgHello so TCP workers can connect in any order).
  Worker(int fd, std::uint32_t index) : fd_(fd), index_(index) {}

  /// Sends the hello, then serves coordinator messages until a clean
  /// kMsgShutdown (returns true) or the coordinator hangs up (returns
  /// false — routine when a run is killed; a restarted coordinator
  /// spawns fresh workers). Throws net::NetError/FrameError on
  /// transport corruption and std::runtime_error on protocol misuse.
  bool run();

  [[nodiscard]] std::uint64_t rounds_served() const noexcept {
    return rounds_served_;
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return table_.has_value() ? table_->total_load() : 0;
  }

 private:
  void handle_init(const InitMsg& msg);
  void handle_round(const RoundMsg& msg);
  void handle_checkpoint(const CheckpointMsg& msg);

  int fd_;
  std::uint32_t index_;
  std::uint64_t n_ = 0;
  std::uint64_t bin_lo_ = 0;
  std::uint64_t bin_count_ = 0;
  std::uint64_t round_ = 0;  ///< last completed round
  std::optional<queueing::BinTable> table_;
  std::uint64_t rounds_served_ = 0;
  // Per-round wait delta scratch, reset each round.
  stats::UintMoments wait_moments_;
  stats::Log2Histogram wait_histogram_;
};

}  // namespace iba::dist
