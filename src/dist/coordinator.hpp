// dist::Coordinator — the randomness- and state-owning half of the
// distributed engine (docs/DISTRIBUTED.md).
//
// The coordinator replicates core::Capped's round structure exactly —
// control decision, arrival sampling, backpressure admission, the full
// bin-choice draw — on the master engine, in the single-process order,
// so the engine stream is byte-identical to a local run by
// construction. Only acceptance + FIFO deletion are remote: the
// pre-drawn choices are partitioned by owning worker (bucket-major, in
// the global visit order) and shipped as one kRound frame per worker;
// the returned deltas are exact integers merged order-independently
// (sums, min/max, UintMoments, histogram counts), so the merged
// RoundMetrics — and everything downstream: controller decisions,
// artifact bytes — cannot tell how many processes computed them.
//
// Failure model: the round protocol is synchronous, so every expected
// response carries a poll deadline. A worker that hangs up or misses
// the deadline raises WorkerLost; the caller (dist_run) exits with
// status 4 and the run resumes from the last committed checkpoint
// generation.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "dist/protocol.hpp"
#include "queueing/aged_pool.hpp"

namespace iba::dist {

/// A worker crashed, stalled past the deadline, or spoke garbage.
class WorkerLost : public std::runtime_error {
 public:
  WorkerLost(std::uint32_t worker, const std::string& what)
      : std::runtime_error("dist: worker " + std::to_string(worker) + ": " +
                           what),
        worker_(worker) {}
  [[nodiscard]] std::uint32_t worker() const noexcept { return worker_; }

 private:
  std::uint32_t worker_;
};

struct CoordinatorOptions {
  /// Poll deadline on every expected worker response (the heartbeat).
  int timeout_ms = 30'000;
};

class Coordinator {
 public:
  /// Fresh run. `worker_fds` are connected sockets in accept order (the
  /// kMsgHello handshake maps them to bin-range slots, so the order is
  /// arbitrary); the coordinator does not own them. Performs the full
  /// init handshake before returning.
  Coordinator(const core::CappedConfig& config, core::Engine engine,
              std::vector<int> worker_fds,
              const CoordinatorOptions& options = {});

  /// Resume. `snapshot` is the coordinator file of a committed
  /// generation (bin_queues empty); workers load their shard of the
  /// same generation under `resume_base`. Verifies ball conservation
  /// across the restored shards before returning.
  Coordinator(const core::CappedSnapshot& snapshot,
              std::vector<int> worker_fds, const std::string& resume_base,
              const CoordinatorOptions& options = {});

  /// Advances one round. Byte-identical metrics and engine stream to
  /// core::Capped::step() on the same (config, engine) history.
  core::RoundMetrics step();

  /// Orchestrates one checkpoint generation at the current round:
  /// shard files (remote), the coordinator file, then the manifest —
  /// written last, as the commit point. Collects the previous-previous
  /// generation's files.
  void save_checkpoint(const std::string& base, const std::string& digest,
                       std::uint64_t seed);

  /// Sends every worker a clean kMsgShutdown (best-effort: a worker
  /// that already died is ignored — the run is over either way).
  void shutdown() noexcept;

  /// The coordinator's persistable state: a CappedSnapshot whose
  /// bin_queues are present but empty (the bins live in the shards).
  [[nodiscard]] core::CappedSnapshot snapshot() const;

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }
  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_total_;
  }
  [[nodiscard]] std::uint64_t deferred_total() const noexcept {
    return deferred_total_;
  }
  [[nodiscard]] const control::Controller* controller() const noexcept {
    return controller_.get();
  }
  [[nodiscard]] const core::CappedConfig& config() const noexcept {
    return config_;
  }

  /// Cumulative measured-window wait statistics (exact integer state).
  [[nodiscard]] core::CappedWaitState wait_state() const;
  [[nodiscard]] std::uint64_t wait_quantile(double q) const noexcept {
    return wait_histogram_.quantile_upper_bound(q);
  }
  /// Clears the wait statistics (burn-in boundary) — coordinator-side
  /// only; workers keep no cumulative wait state.
  void reset_wait_stats() noexcept;

  /// Time-varying arrival rate, as core::Capped::set_lambda_n.
  void set_lambda_n(std::uint64_t lambda_n);
  /// Non-uniform bin sampler (Zipf), as core::Capped::set_bin_sampler.
  /// Reattach after a resume; not serialized.
  void set_bin_sampler(core::BinChoiceSampler* sampler) noexcept {
    bin_sampler_ = sampler;
  }

 private:
  struct Link {
    int fd = -1;
    std::uint64_t bin_lo = 0;
    std::uint64_t bin_count = 0;
  };
  struct Admission {
    std::uint64_t generated = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  Coordinator(const core::CappedConfig& config, core::Engine engine,
              std::vector<int> worker_fds, const CoordinatorOptions& options,
              bool defer_init);
  void validate_dist_config() const;
  void init_workers(const std::string& resume_base);
  void apply_control();
  [[nodiscard]] std::uint64_t sample_arrivals();
  Admission admit_arrivals(std::uint64_t generated);
  void merge_sorted_into_pool(
      std::span<const queueing::AgedPool::Bucket> entries);
  [[nodiscard]] std::uint32_t owner_of(std::uint32_t bin) const noexcept;
  /// Blocks until `fd` is readable (deadline = options_.timeout_ms) and
  /// reads one frame; raises WorkerLost on timeout, EOF, or transport
  /// failure, and on a frame whose type differs from `want`.
  void read_worker_frame(std::uint32_t worker, std::uint32_t want,
                         std::vector<std::uint8_t>& payload);

  core::CappedConfig config_;
  core::Engine engine_;
  CoordinatorOptions options_;
  std::uint64_t round_ = 0;

  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;
  queueing::AgedPool merge_scratch_;
  std::deque<core::DeferredBucket> deferred_;
  std::vector<queueing::AgedPool::Bucket> readmit_scratch_;

  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;
  std::uint64_t shed_total_ = 0;
  std::uint64_t deferred_total_ = 0;

  stats::UintMoments wait_moments_;
  stats::Log2Histogram wait_histogram_;

  std::unique_ptr<control::Controller> controller_;
  core::BinChoiceSampler* bin_sampler_ = nullptr;

  std::vector<Link> links_;
  // Range-split parameters (base/rem convention of the sharded kernel).
  std::uint64_t split_base_ = 0;
  std::uint64_t split_rem_ = 0;
  std::uint64_t split_wide_end_ = 0;

  // Per-round scratch, reused across rounds.
  std::vector<std::uint32_t> choice_scratch_;
  std::vector<RoundMsg> round_scratch_;

  // Checkpoint-generation bookkeeping for deferred gc (see
  // dist/checkpoint.hpp). kNoGeneration = none saved yet / unknown
  // after a resume (that one stale generation is left on disk).
  static constexpr std::uint64_t kNoGeneration = ~std::uint64_t{0};
  std::uint64_t last_saved_round_ = kNoGeneration;
  std::uint64_t prev_saved_round_ = kNoGeneration;
};

}  // namespace iba::dist
