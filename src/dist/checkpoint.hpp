// Distributed checkpoint artifacts (docs/DISTRIBUTED.md):
//
//  * shard file  — one worker's bin range: every queue front-first,
//    written by the worker on kMsgCheckpoint;
//  * coordinator file — the coordinator's own state, stored as a
//    standard checkpoint-v3 CappedSnapshot whose bin_queues are empty
//    (bins live in the shard files), via sim::save_checkpoint;
//  * manifest — the commit record binding one generation: round,
//    geometry, per-shard CRCs. Written (atomically) LAST, so at every
//    crash point the manifest on disk references only complete,
//    durable files.
//
// Generation layout under a base path B at round R with W workers:
//
//   B.r<R>.coord           coordinator snapshot (engine, pool, deferred,
//                          waits, controller, totals)
//   B.r<R>.coord.progress  the scenario Progress sidecar, written by the
//                          runner before the manifest commit
//   B.r<R>.shard<w>        worker w's queues, w in [0, W)
//   B.manifest             points at R; replaced atomically per generation
//
// Round-stamped filenames mean a new generation never overwrites the
// committed one; obsolete generations are garbage-collected one
// checkpoint later (coordinator-side for its own files, via the next
// kMsgCheckpoint's gc_path for shards), so a crash mid-save always
// leaves the previous generation fully intact.
//
// All three files use the repo's standard CRC-bound text envelope
// (`<magic> <version> <crc32> <bytes>` header + body + `end`), written
// atomically (tmp + fsync + rename).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iba::dist {

/// One worker's persisted bin range.
struct ShardState {
  std::uint64_t round = 0;     ///< last completed round
  std::uint64_t bin_lo = 0;    ///< first global bin of the range
  std::uint64_t bin_count = 0;
  std::uint32_t capacity = 1;  ///< storage capacity at save time
  /// Per local bin, front-first (next-to-delete first).
  std::vector<std::vector<std::uint64_t>> queues;
};

/// The commit record of one checkpoint generation.
struct Manifest {
  std::uint64_t round = 0;
  std::uint64_t n = 0;
  std::uint32_t workers = 0;
  std::string digest;      ///< Scenario::digest() of the run
  std::uint64_t seed = 0;
  std::vector<std::uint32_t> shard_crcs;  ///< body CRC per worker
};

/// Derived generation filenames (see the header comment).
[[nodiscard]] std::string shard_path(const std::string& base,
                                     std::uint64_t round,
                                     std::uint32_t worker);
[[nodiscard]] std::string coord_path(const std::string& base,
                                     std::uint64_t round);
[[nodiscard]] std::string manifest_path(const std::string& base);

/// Atomically writes the shard file; returns the body's CRC-32 (which
/// the worker reports in its kMsgCheckpointAck, and the manifest
/// records). Throws std::runtime_error on IO failure.
std::uint32_t save_shard(const ShardState& shard, const std::string& path);

/// Reads and validates a shard file. Throws std::runtime_error on IO
/// errors, bad header, CRC mismatch, or malformed fields.
[[nodiscard]] ShardState load_shard(const std::string& path);

/// Atomically writes the manifest — the generation's commit point.
void save_manifest(const Manifest& manifest, const std::string& path);

/// Reads and validates a manifest.
[[nodiscard]] Manifest load_manifest(const std::string& path);

}  // namespace iba::dist
