// OnlineEstimator — the sensing half of the adaptive control plane
// (docs/CONTROL.md). Fed one RoundMetrics per round, it maintains, in
// O(1) time and zero allocations per observation:
//
//   * λ̂ (windowed):   generated balls over the last W rounds / (W·n) —
//                      exact integer sums, so every kernel computes the
//                      same value bit for bit;
//   * λ̂ (EWMA):       exponentially weighted per-round arrival rate with
//                      α = 2/(W+1) — smoother, reacts to ramps sooner;
//   * pool trend:      (newest − oldest pool size)/W over the window —
//                      the backlog-growth signal the AIMD policy keys on;
//   * wait mean:       windowed mean waiting time from exact integer
//                      Σ wait_sum / Σ wait_count;
//   * wait quantiles:  a dyadic (log2-bucketed) histogram of the
//                      window's per-round mean waits, giving an upper
//                      bound within 2× on any quantile in O(64).
//
// Everything is deterministic: the estimator never touches an RNG, and
// its state is a pure function of the observed metrics stream — which is
// itself byte-identical across the scalar / fused / sharded kernels —
// so control decisions derived from it are too. state()/restore()
// round-trip the full ring contents for checkpoint format v3; derived
// sums and histogram counts are recomputed on restore rather than
// stored, so a corrupted checkpoint cannot desynchronize them.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "core/metrics.hpp"

namespace iba::control {

/// Serializable estimator state: the raw per-round rings plus cursors
/// and the EWMA accumulator (stored as the double's bit pattern so a
/// resumed run continues bit-for-bit). All derived aggregates are
/// recomputed from the rings on restore.
struct EstimatorState {
  std::uint64_t head = 0;    ///< next ring slot to write
  std::uint64_t filled = 0;  ///< occupied ring slots (≤ window)
  std::uint64_t rounds = 0;  ///< rounds observed in total
  std::uint64_t ewma_bits = 0;
  std::vector<std::uint64_t> generated;   ///< per-round arrivals
  std::vector<std::uint64_t> pool;        ///< per-round end pool size
  std::vector<std::uint64_t> wait_sum;    ///< per-round Σ wait
  std::vector<std::uint64_t> wait_count;  ///< per-round deletions
  bool operator==(const EstimatorState&) const = default;
};

class OnlineEstimator {
 public:
  OnlineEstimator(std::uint32_t n, std::uint32_t window)
      : n_(n), window_(window) {
    IBA_EXPECT(n > 0, "OnlineEstimator: n must be positive");
    IBA_EXPECT(window >= 1, "OnlineEstimator: window must be at least 1");
    gen_.assign(window, 0);
    pool_.assign(window, 0);
    wsum_.assign(window, 0);
    wcnt_.assign(window, 0);
    bucket_counts_.fill(0);
  }

  /// Ingests one completed round. O(1), allocation-free.
  void observe(const core::RoundMetrics& m) noexcept {
    // Per-round wait sums are integers carried in a double (exact below
    // 2^53 — see core/capped.cpp); recover the integer for exact sums.
    const auto wsum = static_cast<std::uint64_t>(m.wait_sum);
    if (filled_ == window_) {
      // Evict the oldest sample; its dyadic bucket is recomputed from
      // the ring (deterministic integer division), not stored.
      gen_sum_ -= gen_[head_];
      wait_sum_ -= wsum_[head_];
      wait_count_ -= wcnt_[head_];
      --bucket_counts_[mean_wait_bucket(wsum_[head_], wcnt_[head_])];
    } else {
      ++filled_;
    }
    gen_[head_] = m.generated;
    pool_[head_] = m.pool_size;
    wsum_[head_] = wsum;
    wcnt_[head_] = m.wait_count;
    gen_sum_ += m.generated;
    wait_sum_ += wsum;
    wait_count_ += m.wait_count;
    ++bucket_counts_[mean_wait_bucket(wsum, m.wait_count)];
    head_ = head_ + 1 == window_ ? 0 : head_ + 1;

    const double rate =
        static_cast<double>(m.generated) / static_cast<double>(n_);
    ewma_ = rounds_ == 0 ? rate : ewma_ + alpha() * (rate - ewma_);
    ++rounds_;
  }

  /// True once a full window has been observed (policies hold off until
  /// then — deciding from a half-filled window amplifies startup noise).
  [[nodiscard]] bool warm() const noexcept { return filled_ == window_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint32_t window() const noexcept { return window_; }

  /// Windowed arrival-rate estimate in [0, 1].
  [[nodiscard]] double lambda_window() const noexcept {
    if (filled_ == 0) return 0.0;
    return static_cast<double>(gen_sum_) /
           (static_cast<double>(filled_) * static_cast<double>(n_));
  }

  /// EWMA arrival-rate estimate, α = 2/(window+1).
  [[nodiscard]] double lambda_ewma() const noexcept { return ewma_; }

  /// Pool-size drift per round over the window: positive when the
  /// backlog is growing. 0 until two samples exist.
  [[nodiscard]] double pool_trend() const noexcept {
    if (filled_ < 2) return 0.0;
    const std::uint64_t newest_idx =
        head_ == 0 ? window_ - 1 : head_ - 1;
    const std::uint64_t oldest_idx = filled_ == window_ ? head_ : 0;
    const double newest = static_cast<double>(pool_[newest_idx]);
    const double oldest = static_cast<double>(pool_[oldest_idx]);
    return (newest - oldest) / static_cast<double>(filled_ - 1);
  }

  /// Windowed mean waiting time (0 when nothing was deleted).
  [[nodiscard]] double mean_wait() const noexcept {
    if (wait_count_ == 0) return 0.0;
    return static_cast<double>(wait_sum_) / static_cast<double>(wait_count_);
  }

  /// Upper bound (within 2×) on the q-quantile of the window's
  /// per-round mean waits, from the dyadic bucket counts.
  [[nodiscard]] std::uint64_t wait_quantile_upper(double q) const noexcept {
    if (filled_ == 0) return 0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(filled_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket_counts_.size(); ++b) {
      seen += bucket_counts_[b];
      if (seen >= rank) {
        return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      }
    }
    return ~std::uint64_t{0};
  }

  [[nodiscard]] EstimatorState state() const {
    EstimatorState s;
    s.head = head_;
    s.filled = filled_;
    s.rounds = rounds_;
    s.ewma_bits = bit_cast_to_u64(ewma_);
    s.generated = gen_;
    s.pool = pool_;
    s.wait_sum = wsum_;
    s.wait_count = wcnt_;
    return s;
  }

  /// Restores ring contents and recomputes every derived aggregate.
  /// Throws (via IBA_EXPECT) when the state does not fit this window.
  void restore(const EstimatorState& s) {
    IBA_EXPECT(s.generated.size() == window_ && s.pool.size() == window_ &&
                   s.wait_sum.size() == window_ &&
                   s.wait_count.size() == window_,
               "OnlineEstimator: state window mismatch");
    IBA_EXPECT(s.head < window_ && s.filled <= window_ && s.filled <= s.rounds,
               "OnlineEstimator: state cursors out of range");
    head_ = s.head;
    filled_ = s.filled;
    rounds_ = s.rounds;
    ewma_ = bit_cast_to_double(s.ewma_bits);
    gen_ = s.generated;
    pool_ = s.pool;
    wsum_ = s.wait_sum;
    wcnt_ = s.wait_count;
    gen_sum_ = 0;
    wait_sum_ = 0;
    wait_count_ = 0;
    bucket_counts_.fill(0);
    for (std::uint64_t i = 0; i < filled_; ++i) {
      // Occupied slots: the filled_ entries ending just before head_.
      const std::uint64_t idx = (head_ + window_ - 1 - i) % window_;
      gen_sum_ += gen_[idx];
      wait_sum_ += wsum_[idx];
      wait_count_ += wcnt_[idx];
      ++bucket_counts_[mean_wait_bucket(wsum_[idx], wcnt_[idx])];
    }
  }

 private:
  [[nodiscard]] double alpha() const noexcept {
    return 2.0 / (static_cast<double>(window_) + 1.0);
  }

  /// Dyadic bucket of a round's mean wait: bucket b covers waits in
  /// [2^(b−1), 2^b − 1], bucket 0 is wait 0 (same layout as
  /// stats::Log2Histogram).
  [[nodiscard]] static std::uint64_t mean_wait_bucket(
      std::uint64_t wsum, std::uint64_t wcnt) noexcept {
    const std::uint64_t mean = wcnt == 0 ? 0 : wsum / wcnt;
    return mean == 0
               ? 0
               : static_cast<std::uint64_t>(64 - std::countl_zero(mean));
  }

  [[nodiscard]] static std::uint64_t bit_cast_to_u64(double v) noexcept {
    return std::bit_cast<std::uint64_t>(v);
  }
  [[nodiscard]] static double bit_cast_to_double(std::uint64_t bits) noexcept {
    return std::bit_cast<double>(bits);
  }

  std::uint32_t n_;
  std::uint32_t window_;
  std::uint64_t head_ = 0;
  std::uint64_t filled_ = 0;
  std::uint64_t rounds_ = 0;
  double ewma_ = 0.0;
  std::uint64_t gen_sum_ = 0;
  std::uint64_t wait_sum_ = 0;
  std::uint64_t wait_count_ = 0;
  std::array<std::uint64_t, 65> bucket_counts_{};
  std::vector<std::uint64_t> gen_;
  std::vector<std::uint64_t> pool_;
  std::vector<std::uint64_t> wsum_;
  std::vector<std::uint64_t> wcnt_;
};

}  // namespace iba::control
