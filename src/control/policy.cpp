#include "control/policy.hpp"

#include <algorithm>
#include <cmath>

namespace iba::control {

namespace {

[[nodiscard]] std::uint32_t clamp_capacity(double raw,
                                           std::uint32_t c_max) noexcept {
  const double rounded = std::round(std::max(1.0, raw));
  if (rounded >= static_cast<double>(c_max)) return c_max;
  return static_cast<std::uint32_t>(rounded);
}

/// √(ln(1/(1−λ̂))) with λ̂ clamped into [0, 1): the estimate can touch
/// 1.0 exactly under a burst (every bin receives a ball every round),
/// where the un-clamped form is +∞.
[[nodiscard]] double sweet_spot_raw(double lambda_hat) noexcept {
  const double lam = std::clamp(lambda_hat, 0.0, 1.0 - 1e-12);
  return std::sqrt(std::log(1.0 / (1.0 - lam)));
}

[[nodiscard]] std::uint32_t decide_sweet_spot(const OnlineEstimator& est,
                                              const DecisionInput& in) noexcept {
  const double raw = sweet_spot_raw(est.lambda_ewma());
  // Dead band: when the continuous sweet spot sits within (0.5 +
  // hysteresis) of the current integer capacity, rounding jitter is the
  // only thing a change would chase — keep c.
  if (std::abs(raw - static_cast<double>(in.current_capacity)) <=
      0.5 + in.hysteresis) {
    return in.current_capacity;
  }
  return clamp_capacity(raw, in.c_max);
}

[[nodiscard]] std::uint32_t step(std::uint32_t c, std::int32_t dir) noexcept {
  if (dir > 0) return c + 1;
  return c > 1 ? c - 1 : 1;
}

[[nodiscard]] std::uint32_t decide_aimd(const OnlineEstimator& est,
                                        const DecisionInput& in,
                                        PolicyState& st) noexcept {
  const double wait = est.mean_wait();
  const double prev = std::bit_cast<double>(st.prev_wait_bits);
  const double best = std::bit_cast<double>(st.best_wait_bits);
  const double trend = est.pool_trend();

  std::uint32_t target = in.current_capacity;
  if (trend > 0.01 * static_cast<double>(in.n)) {
    // Backlog growing: the system is under-provisioned regardless of
    // what the wait says — additive increase.
    target = in.current_capacity + 1;
    st.direction = 1;
  } else if (st.has_best != 0 && wait > 4.0 * best && trend <= 0.0) {
    // Wait blown far past the best seen with a stable pool: the buffers
    // themselves are the delay (FIFO queueing grows with c) —
    // multiplicative decrease.
    target = std::max(1u, in.current_capacity / 2);
    st.direction = -1;
  } else if (st.has_prev != 0) {
    if (wait > prev * (1.0 + in.hysteresis)) {
      // Last probe made things worse: reverse and step back.
      st.direction = -st.direction;
      target = step(in.current_capacity, st.direction);
    } else if (wait < prev * (1.0 - in.hysteresis)) {
      // Last probe helped: keep walking the same way.
      target = step(in.current_capacity, st.direction);
    }
    // Within the hysteresis band: hold.
  }

  st.prev_wait_bits = std::bit_cast<std::uint64_t>(wait);
  st.has_prev = 1;
  if (st.has_best == 0 || wait < best) {
    st.best_wait_bits = std::bit_cast<std::uint64_t>(wait);
    st.has_best = 1;
  }
  return std::clamp(target, 1u, in.c_max);
}

}  // namespace

std::uint32_t sweet_spot_capacity(double lambda_hat,
                                  std::uint32_t c_max) noexcept {
  return clamp_capacity(sweet_spot_raw(lambda_hat), c_max);
}

std::uint32_t decide_capacity(Policy policy, const OnlineEstimator& estimator,
                              const DecisionInput& input, PolicyState& state) noexcept {
  switch (policy) {
    case Policy::kNone:
    case Policy::kStatic:
      return input.current_capacity;
    case Policy::kSweetSpot:
      return std::clamp(decide_sweet_spot(estimator, input), 1u, input.c_max);
    case Policy::kAimd:
      return decide_aimd(estimator, input, state);
  }
  return input.current_capacity;
}

}  // namespace iba::control
