// Controller — the actuating half of the adaptive control plane
// (docs/CONTROL.md). One instance rides inside core::Capped:
//
//   observe(m)   after every completed round, feeding the estimator;
//   decide(...)  at the next round boundary, before any engine draw —
//                returns the capacity / pool-limit targets to apply, or
//                nullopt when nothing should change (cold estimator,
//                cooldown, or the policy is happy).
//
// Actuation discipline (what keeps kernels byte-identical and resumes
// exact):
//  * decisions are taken only at round boundaries, from estimator state
//    that is itself a pure function of the byte-identical metrics
//    stream — so every kernel and shard count takes the same decision
//    at the same round;
//  * the cooldown is consumed only when a change actually applies:
//    refusing to change is free, flapping is rate-limited;
//  * the full mutable state (estimator rings, policy memory, cooldown,
//    counters, admission limit) round-trips through ControllerState for
//    checkpoint format v3 — a killed-and-resumed run decides
//    identically, including mid-shrink.
//
// The controller never touches the process RNG and allocates nothing
// after construction (the decision log is bounded and pre-reserved).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "control/estimator.hpp"
#include "control/policy.hpp"

namespace iba::telemetry {
class Registry;
}  // namespace iba::telemetry

namespace iba::control {

/// Full serializable controller state (checkpoint v3).
struct ControllerState {
  EstimatorState estimator;
  PolicyState policy;
  std::uint64_t cooldown_until = 0;  ///< first round allowed to change
  std::uint64_t changes = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t admission_limit = 0;  ///< current pool limit (0: none)
  /// The originally configured pool limit. The live config's pool_limit
  /// tracks the admission loop's output, so a resumed run would
  /// otherwise adopt the adjusted value as its relax-back baseline and
  /// decide differently from the uninterrupted run.
  std::uint64_t admission_base = 0;
  bool operator==(const ControllerState&) const = default;
};

/// Targets for the upcoming round. Only returned when at least one of
/// them differs from the current value.
struct Decision {
  std::uint32_t capacity = 0;
  std::uint64_t pool_limit = 0;  ///< 0 when admission control is off
};

/// One applied change, kept in a bounded in-memory log for reports and
/// tests (not serialized — counters and telemetry survive the resume).
struct DecisionRecord {
  std::uint64_t round = 0;
  std::uint32_t old_capacity = 0;
  std::uint32_t new_capacity = 0;
  std::uint64_t old_pool_limit = 0;
  std::uint64_t new_pool_limit = 0;
  double lambda_hat = 0.0;
  double mean_wait = 0.0;
};

class Controller {
 public:
  /// `base_pool_limit` is the configured pool cap the admission loop
  /// relaxes back toward (0 when admission control is unused).
  Controller(const ControlConfig& config, std::uint32_t n,
             std::uint64_t base_pool_limit);

  /// Feeds one completed round into the estimator. O(1).
  void observe(const core::RoundMetrics& m) noexcept {
    estimator_.observe(m);
  }

  /// Consults the policy for round `next_round` (the round about to
  /// run). Returns the targets when something should change, nullopt
  /// otherwise. Deterministic; mutates policy memory and, on an applied
  /// change, arms the cooldown and logs the decision.
  [[nodiscard]] std::optional<Decision> decide(std::uint64_t next_round,
                                               std::uint32_t current_capacity,
                                               std::uint64_t current_pool_limit);

  [[nodiscard]] const ControlConfig& config() const noexcept { return config_; }
  [[nodiscard]] const OnlineEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t changes_total() const noexcept {
    return changes_;
  }
  [[nodiscard]] std::uint64_t grows_total() const noexcept { return grows_; }
  [[nodiscard]] std::uint64_t shrinks_total() const noexcept {
    return shrinks_;
  }

  /// Optional metrics sink; decisions bump counters and emit a
  /// structured `control_decision` log line when attached.
  void set_registry(telemetry::Registry* registry) noexcept {
    registry_ = registry;
  }

  [[nodiscard]] ControllerState state() const;
  /// Throws ContractViolation when the state does not fit this
  /// configuration (wrong estimator window).
  void restore(const ControllerState& state);

 private:
  [[nodiscard]] std::uint64_t admission_target_limit(
      std::uint64_t current_limit) const noexcept;

  ControlConfig config_;
  std::uint32_t n_;
  std::uint64_t base_pool_limit_;
  OnlineEstimator estimator_;
  PolicyState policy_state_;
  std::uint64_t cooldown_until_ = 0;
  std::uint64_t changes_ = 0;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t admission_limit_ = 0;
  telemetry::Registry* registry_ = nullptr;
  std::vector<DecisionRecord> decisions_;
};

}  // namespace iba::control
