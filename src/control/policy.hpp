// Capacity policies of the adaptive control plane (docs/CONTROL.md).
// Three policies behind one pure decision function:
//
//   static      never changes anything — the controller runs its
//               estimators but the trajectory is byte-identical to a
//               run without control (the inertness baseline);
//   sweet-spot  closed-form c* = round(√(ln(1/(1−λ̂)))) from the paper's
//               Theorem 2 sweet spot (the same formula as
//               analysis::sweet_spot_prediction — kept in lockstep by
//               tests/control_test.cpp), clamped to [1, c_max], with a
//               hysteresis dead band around the rounding boundary;
//   aimd        model-free hill climbing on the windowed mean wait:
//               additive +1 when the pool backlog grows, ±1 probing
//               steps that reverse on a hysteresis-significant wait
//               regression, and a multiplicative halving when the wait
//               blows past 4× the best seen with a stable pool
//               (over-buffered: large c inflates FIFO queueing delay).
//
// Decisions are pure functions of (estimator, PolicyState, inputs) — no
// RNG, no clock — so every kernel, shard count, and checkpoint-resumed
// run makes the same decision at the same round.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "control/estimator.hpp"

namespace iba::control {

/// Which capacity policy the controller runs. kNone disables the whole
/// control plane (no estimator, no hooks — the PR3/PR4 process).
enum class Policy : std::uint8_t {
  kNone,
  kStatic,
  kSweetSpot,
  kAimd,
};

[[nodiscard]] constexpr std::string_view to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kNone: return "none";
    case Policy::kStatic: return "static";
    case Policy::kSweetSpot: return "sweet-spot";
    case Policy::kAimd: return "aimd";
  }
  return "?";
}

/// Parses the --control flag vocabulary; false on unknown names.
[[nodiscard]] constexpr bool policy_from_string(std::string_view name,
                                                Policy& out) noexcept {
  if (name == "none") {
    out = Policy::kNone;
    return true;
  }
  if (name == "static") {
    out = Policy::kStatic;
    return true;
  }
  if (name == "sweet-spot" || name == "sweetspot") {
    out = Policy::kSweetSpot;
    return true;
  }
  if (name == "aimd") {
    out = Policy::kAimd;
    return true;
  }
  return false;
}

/// Control-plane configuration, carried inside CappedConfig (and thus
/// through snapshots and checkpoint format v3).
struct ControlConfig {
  Policy policy = Policy::kNone;
  std::uint32_t c_max = 16;     ///< decision clamp: capacity stays in [1, c_max]
  std::uint32_t window = 64;    ///< estimator window, rounds
  std::uint32_t cooldown = 128; ///< min rounds between applied changes
  double hysteresis = 0.1;      ///< dead band (see each policy's use)
  /// Admission control (composed with PR4 backpressure): when > 0, the
  /// controller AIMDs the pool limit so the window's p95 per-round mean
  /// wait stays at or below this many rounds. Requires a backpressure
  /// mode and pool_limit to be configured. 0 = capacity control only.
  std::uint64_t admission_target = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return policy != Policy::kNone;
  }

  /// Throws ContractViolation when the configuration is unusable.
  void validate() const {
    IBA_EXPECT(c_max >= 1 && c_max <= 0xFFFFu,
               "ControlConfig: c_max must lie in [1, 65535]");
    IBA_EXPECT(window >= 1 && window <= (1u << 16),
               "ControlConfig: window must lie in [1, 65536]");
    IBA_EXPECT(cooldown >= 1, "ControlConfig: cooldown must be at least 1");
    IBA_EXPECT(hysteresis >= 0.0 && hysteresis <= 1.0,
               "ControlConfig: hysteresis must lie in [0, 1]");
  }

  bool operator==(const ControlConfig&) const = default;
};

/// Mutable per-policy memory (AIMD's hill-climb state). Serialized in
/// checkpoint v3; doubles travel as bit patterns so resume is exact.
struct PolicyState {
  std::int32_t direction = 1;       ///< AIMD probe direction (+1 / −1)
  std::uint32_t has_prev = 0;       ///< prev_wait_bits is valid
  std::uint64_t prev_wait_bits = 0; ///< wait at the previous decision
  std::uint32_t has_best = 0;       ///< best_wait_bits is valid
  std::uint64_t best_wait_bits = 0; ///< best wait seen at any decision
  bool operator==(const PolicyState&) const = default;
};

/// The paper's sweet-spot capacity for an arrival-rate estimate:
/// round(√(ln(1/(1−λ̂)))), at least 1, clamped to c_max. Same closed
/// form as analysis::sweet_spot_prediction / suggest_capacity (control
/// cannot link analysis without a dependency cycle through core;
/// tests/control_test.cpp pins the two implementations together).
[[nodiscard]] std::uint32_t sweet_spot_capacity(double lambda_hat,
                                                std::uint32_t c_max) noexcept;

/// Everything a capacity decision may read besides the estimator.
struct DecisionInput {
  std::uint32_t current_capacity = 1;
  std::uint32_t n = 1;
  std::uint32_t c_max = 16;
  double hysteresis = 0.1;
};

/// One capacity decision: the target capacity for the next round (may
/// equal current_capacity — "no change"). Mutates `state` (AIMD memory)
/// deterministically; static and sweet-spot ignore it.
[[nodiscard]] std::uint32_t decide_capacity(Policy policy,
                                            const OnlineEstimator& estimator,
                                            const DecisionInput& input,
                                            PolicyState& state) noexcept;

}  // namespace iba::control
