#include "control/controller.hpp"

#include <algorithm>

#include "telemetry/log.hpp"
#include "telemetry/registry.hpp"

namespace iba::control {

namespace {

/// Bound on the in-memory decision log: a run that changes capacity
/// thousands of times is flapping, and the counters still tell that
/// story after the log saturates.
constexpr std::size_t kMaxDecisionRecords = 256;

}  // namespace

Controller::Controller(const ControlConfig& config, std::uint32_t n,
                       std::uint64_t base_pool_limit)
    : config_(config),
      n_(n),
      base_pool_limit_(base_pool_limit),
      estimator_(n, config.window),
      admission_limit_(base_pool_limit) {
  config_.validate();
  IBA_EXPECT(config_.enabled(), "Controller: policy must not be 'none'");
  IBA_EXPECT(config_.admission_target == 0 || base_pool_limit > 0,
             "Controller: admission control requires a configured pool limit");
  decisions_.reserve(kMaxDecisionRecords);
}

std::uint64_t Controller::admission_target_limit(
    std::uint64_t current_limit) const noexcept {
  if (config_.admission_target == 0) return current_limit;
  const std::uint64_t floor = std::max<std::uint64_t>(1, n_ / 4);
  const std::uint64_t p95 = estimator_.wait_quantile_upper(0.95);
  if (p95 > config_.admission_target) {
    // Multiplicative decrease: shed harder until the wait target holds.
    return std::max(floor, current_limit / 2);
  }
  if (p95 * 2 < config_.admission_target && current_limit < base_pool_limit_) {
    // Comfortably under target: additive increase back toward the
    // configured limit.
    const std::uint64_t inc = std::max<std::uint64_t>(1, base_pool_limit_ / 16);
    return std::min(base_pool_limit_, current_limit + inc);
  }
  return current_limit;
}

std::optional<Decision> Controller::decide(std::uint64_t next_round,
                                           std::uint32_t current_capacity,
                                           std::uint64_t current_pool_limit) {
  if (config_.policy == Policy::kStatic && config_.admission_target == 0) {
    return std::nullopt;  // nothing can ever change — stay inert
  }
  if (!estimator_.warm()) return std::nullopt;
  if (next_round < cooldown_until_) return std::nullopt;

  const DecisionInput input{current_capacity, n_, config_.c_max,
                            config_.hysteresis};
  const std::uint32_t capacity =
      decide_capacity(config_.policy, estimator_, input, policy_state_);
  const std::uint64_t pool_limit = admission_target_limit(current_pool_limit);
  if (capacity == current_capacity && pool_limit == current_pool_limit) {
    return std::nullopt;  // no change: the cooldown is not consumed
  }

  cooldown_until_ = next_round + config_.cooldown;
  ++changes_;
  if (capacity > current_capacity) ++grows_;
  if (capacity < current_capacity) ++shrinks_;
  admission_limit_ = pool_limit;

  if (decisions_.size() < kMaxDecisionRecords) {
    decisions_.push_back({next_round, current_capacity, capacity,
                          current_pool_limit, pool_limit,
                          estimator_.lambda_ewma(), estimator_.mean_wait()});
  }
  if (registry_ != nullptr) {
    registry_->counter("control_decisions_total").inc();
    if (capacity > current_capacity) {
      registry_->counter("control_capacity_grows_total").inc();
    }
    if (capacity < current_capacity) {
      registry_->counter("control_capacity_shrinks_total").inc();
    }
    if (pool_limit != current_pool_limit) {
      registry_->counter("control_admission_changes_total").inc();
    }
    registry_->gauge("control_capacity").set(static_cast<double>(capacity));
    telemetry::log_info(
        "control_decision",
        {{"round", next_round},
         {"policy", to_string(config_.policy)},
         {"capacity_from", current_capacity},
         {"capacity_to", capacity},
         {"pool_limit_from", current_pool_limit},
         {"pool_limit_to", pool_limit},
         {"lambda_hat", estimator_.lambda_ewma()},
         {"mean_wait", estimator_.mean_wait()}});
  }
  return Decision{capacity, pool_limit};
}

ControllerState Controller::state() const {
  ControllerState s;
  s.estimator = estimator_.state();
  s.policy = policy_state_;
  s.cooldown_until = cooldown_until_;
  s.changes = changes_;
  s.grows = grows_;
  s.shrinks = shrinks_;
  s.admission_limit = admission_limit_;
  s.admission_base = base_pool_limit_;
  return s;
}

void Controller::restore(const ControllerState& state) {
  estimator_.restore(state.estimator);
  policy_state_ = state.policy;
  cooldown_until_ = state.cooldown_until;
  changes_ = state.changes;
  grows_ = state.grows;
  shrinks_ = state.shrinks;
  admission_limit_ = state.admission_limit;
  // A resumed process is constructed from the snapshot config, whose
  // pool_limit is the admission loop's *current* output — the original
  // baseline only survives through the serialized state.
  base_pool_limit_ = state.admission_base;
}

}  // namespace iba::control
