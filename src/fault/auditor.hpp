// InvariantAuditor — online safety checker for CAPPED trajectories
// (docs/ROBUSTNESS.md). Attached to a run, it re-derives the process
// invariants from public state after each round and flags the first
// round in which any of them breaks:
//
//   * ball conservation:  generated == pool + deferred + load + deleted
//                         + shed (cumulative, exact integers)
//   * bounded buffers:    load(i) <= capacity for every bin; under
//                         adaptive control a post-shrink bin may sit
//                         above the (new) capacity while it drains, but
//                         never above control.c_max, and the overfull
//                         load must be monotone non-increasing
//   * FIFO age order:     buffered labels are non-decreasing front to
//                         back — checked only where it is a true
//                         invariant: capacity <= 2, FIFO deletion,
//                         oldest-first acceptance, no requeues and no
//                         fault plan. Outside that regime a retrying
//                         old ball can legitimately sit behind a
//                         younger resident (see the guard below).
//   * causality:          no buffered or pooled label exceeds the round
//   * monotone counters:  rounds advance by one; cumulative totals never
//                         decrease; per-round wait count equals deletes
//
// Cheap checks (O(1) on RoundMetrics) run every round. Deep checks
// (O(n + load)) run every `cadence` rounds — cadence 1 is the debug
// setting, large cadences make the auditor affordable in benchmarks
// (bench_fault_recovery measures the overhead; budget is <= 5%).
//
// Violations are recorded (bounded), counted in the telemetry registry
// (`audit_violations_total`, `audit_rounds_total`, `audit_deep_total`),
// and the FIRST violation is emitted through the structured log as an
// `invariant_violation` error event. The auditor never throws and never
// mutates the process: a broken run keeps running so the operator sees
// the full blast radius.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "telemetry/log.hpp"
#include "telemetry/registry.hpp"

namespace iba::fault {

class InvariantAuditor {
 public:
  struct Violation {
    std::uint64_t round = 0;
    std::string invariant;  ///< short machine-friendly name
    std::string detail;     ///< human-readable expectation vs. observation
  };

  /// `cadence`: deep checks run when round % cadence == 0 (>= 1).
  /// `registry`: optional; violation/audit counters land there.
  explicit InvariantAuditor(std::uint64_t cadence = 1,
                            telemetry::Registry* registry = nullptr)
      : cadence_(cadence == 0 ? 1 : cadence), registry_(registry) {}

  /// Audits one completed round. Call right after the process produced
  /// `m` for that round.
  void observe(const core::Capped& process, const core::RoundMetrics& m) {
    ++rounds_audited_;
    if (registry_ != nullptr) {
      registry_->counter("audit_rounds_total").inc();
    }

    // -- cheap checks: counters only ---------------------------------
    if (last_round_ != 0 && m.round != last_round_ + 1) {
      report(m.round, "round_monotone",
             "rounds must advance by one: saw round " +
                 std::to_string(m.round) + " after " +
                 std::to_string(last_round_));
    }
    last_round_ = m.round;
    if (m.round != process.round()) {
      report(m.round, "round_coherent",
             "metrics round " + std::to_string(m.round) +
                 " != process round " + std::to_string(process.round()));
    }
    if (m.wait_count != m.deleted) {
      report(m.round, "wait_per_delete",
             "every deleted ball records one wait: deleted=" +
                 std::to_string(m.deleted) +
                 " wait_count=" + std::to_string(m.wait_count));
    }
    if (m.accepted > m.thrown) {
      report(m.round, "accept_bound",
             "accepted=" + std::to_string(m.accepted) + " exceeds thrown=" +
                 std::to_string(m.thrown));
    }
    check_monotone(m.round, "generated_total", process.generated_total(),
                   last_generated_);
    check_monotone(m.round, "deleted_total", process.deleted_total(),
                   last_deleted_);
    check_monotone(m.round, "shed_total", process.shed_total(), last_shed_);
    if (m.requeued > 0) requeues_seen_ = true;

    if (m.round % cadence_ != 0) return;

    // -- deep checks: O(n + load) over public state ------------------
    ++deep_audits_;
    if (registry_ != nullptr) {
      registry_->counter("audit_deep_total").inc();
    }

    const std::uint64_t stored =
        process.pool_size() + process.deferred_total() + process.total_load() +
        process.deleted_total() + process.shed_total();
    if (process.generated_total() != stored) {
      report(m.round, "conservation",
             "generated_total=" + std::to_string(process.generated_total()) +
                 " != pool+deferred+load+deleted+shed=" +
                 std::to_string(stored));
    }

    const bool finite =
        process.capacity() != core::CappedConfig::kInfiniteCapacity;
    // Age monotonicity inside a bin is only an invariant when a queue
    // can never carry balls accepted in different rounds: a retrying
    // old ball is legitimately accepted *behind* a younger resident
    // (oldest-first ranks only the balls thrown to the bin that round).
    // With capacity <= 2 and FIFO service every nonempty bin deletes
    // one ball per round, so end-of-round load >= 2 forces a
    // single-round batch (which ascends); capacity >= 3, requeues, or a
    // fault plan that suppresses service all break that premise.
    const bool check_fifo =
        !requeues_seen_ && !process.has_fault_plan() && finite &&
        !process.config().control.enabled() && process.capacity() <= 2 &&
        process.config().deletion == core::DeletionDiscipline::kFifo &&
        process.config().acceptance == core::AcceptanceOrder::kOldestFirst;
    // Dynamic-capacity invariant (adaptive control): after a shrink a
    // bin may legitimately hold more than the current capacity while it
    // drains, but (a) never more than control.c_max or than it held at
    // the previous deep audit, and (b) the excess must shrink
    // monotonically — an overfull bin accepts nothing, so its load can
    // only go down. A broken shrink (bin keeps accepting while
    // overfull) trips `capacity_drain` here.
    const bool dynamic_capacity = process.config().control.enabled();
    if (dynamic_capacity && prev_overfull_.size() != process.n()) {
      prev_overfull_.assign(process.n(), 0);
    }
    std::uint64_t load_sum = 0;
    for (std::uint32_t bin = 0; bin < process.n(); ++bin) {
      const std::uint64_t load = process.load(bin);
      load_sum += load;
      if (finite && load > process.capacity()) {
        if (!dynamic_capacity) {
          report(m.round, "capacity_bound",
                 "bin " + std::to_string(bin) + " holds " +
                     std::to_string(load) + " > capacity " +
                     std::to_string(process.capacity()));
          continue;
        }
        const std::uint64_t ceiling = process.config().control.c_max;
        const std::uint64_t prev = prev_overfull_[bin];
        if (load > ceiling) {
          report(m.round, "capacity_bound",
                 "bin " + std::to_string(bin) + " holds " +
                     std::to_string(load) + " > control.c_max " +
                     std::to_string(ceiling));
        } else if (prev != 0 && load > prev) {
          report(m.round, "capacity_drain",
                 "overfull bin " + std::to_string(bin) + " grew " +
                     std::to_string(prev) + " -> " + std::to_string(load) +
                     " above capacity " +
                     std::to_string(process.capacity()) +
                     " (drain must be monotone)");
        }
        prev_overfull_[bin] = load;
        continue;
      }
      if (dynamic_capacity && prev_overfull_[bin] != 0) {
        prev_overfull_[bin] = 0;  // drained back under the bound
      }
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < load; ++i) {
        const std::uint64_t label = process.bin_label(bin, i);
        if (label > m.round) {
          report(m.round, "causality",
                 "bin " + std::to_string(bin) + " slot " + std::to_string(i) +
                     " carries label " + std::to_string(label) +
                     " from the future");
          break;
        }
        if (check_fifo && i > 0 && label < prev) {
          report(m.round, "fifo_order",
                 "bin " + std::to_string(bin) + " slot " + std::to_string(i) +
                     " label " + std::to_string(label) +
                     " younger than predecessor " + std::to_string(prev));
          break;
        }
        prev = label;
      }
    }
    if (load_sum != process.total_load()) {
      report(m.round, "load_coherent",
             "sum of bin loads " + std::to_string(load_sum) +
                 " != total_load " + std::to_string(process.total_load()));
    }

    std::uint64_t prev_label = 0;
    bool first = true;
    for (const auto& bucket : process.pool().buckets()) {
      if (!first && bucket.label <= prev_label) {
        report(m.round, "pool_order",
               "pool buckets not strictly label-ordered at label " +
                   std::to_string(bucket.label));
        break;
      }
      if (bucket.label > m.round) {
        report(m.round, "causality",
               "pool bucket labelled " + std::to_string(bucket.label) +
                   " from the future");
        break;
      }
      prev_label = bucket.label;
      first = false;
    }
  }

  [[nodiscard]] bool ok() const noexcept { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violation_count_;
  }
  /// First kMaxRecorded violations, in order of detection.
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t rounds_audited() const noexcept {
    return rounds_audited_;
  }
  [[nodiscard]] std::uint64_t deep_audits() const noexcept {
    return deep_audits_;
  }
  [[nodiscard]] std::uint64_t cadence() const noexcept { return cadence_; }

  static constexpr std::size_t kMaxRecorded = 64;

 private:
  void check_monotone(std::uint64_t round, const char* what,
                      std::uint64_t now, std::uint64_t& last) {
    if (now < last) {
      report(round, "counter_monotone",
             std::string(what) + " decreased: " + std::to_string(last) +
                 " -> " + std::to_string(now));
    }
    last = now;
  }

  void report(std::uint64_t round, std::string invariant, std::string detail) {
    ++violation_count_;
    if (registry_ != nullptr) {
      registry_->counter("audit_violations_total").inc();
    }
    if (violation_count_ == 1) {
      telemetry::log_error("invariant_violation",
                           {{"round", round},
                            {"invariant", std::string_view(invariant)},
                            {"detail", std::string_view(detail)}});
    }
    if (violations_.size() < kMaxRecorded) {
      violations_.push_back({round, std::move(invariant), std::move(detail)});
    }
  }

  std::uint64_t cadence_;
  telemetry::Registry* registry_;
  std::uint64_t last_round_ = 0;
  std::uint64_t last_generated_ = 0;
  std::uint64_t last_deleted_ = 0;
  std::uint64_t last_shed_ = 0;
  bool requeues_seen_ = false;
  /// Per-bin load at the previous deep audit while above the current
  /// capacity (0 = was not overfull). Sized lazily, only under control.
  std::vector<std::uint64_t> prev_overfull_;
  std::uint64_t rounds_audited_ = 0;
  std::uint64_t deep_audits_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace iba::fault
