#include "fault/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>

namespace iba::fault {

namespace {

[[noreturn]] void fail(const std::string& event, const std::string& why) {
  throw ScheduleError("event '" + event + "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t parse_u64(const std::string& event, std::string_view key,
                        std::string_view text) {
  if (text.empty()) fail(event, std::string(key) + " expects a number");
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') {
      fail(event, std::string(key) + ": invalid number '" +
                      std::string(text) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      fail(event, std::string(key) + ": number out of range");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::uint32_t parse_u32(const std::string& event, std::string_view key,
                        std::string_view text) {
  const std::uint64_t value = parse_u64(event, key, text);
  if (value > UINT32_MAX) {
    fail(event, std::string(key) + ": number out of range");
  }
  return static_cast<std::uint32_t>(value);
}

double parse_prob(const std::string& event, std::string_view key,
                  std::string_view text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(std::string(text), &pos);
    if (pos != text.size()) throw std::invalid_argument("junk");
    if (!(value >= 0.0 && value < 1.0)) {
      fail(event, std::string(key) + " must lie in [0, 1)");
    }
    return value;
  } catch (const ScheduleError&) {
    throw;
  } catch (const std::exception&) {
    fail(event, std::string(key) + ": invalid probability '" +
                    std::string(text) + "'");
  }
}

// `a-b+c+d-e` → sorted disjoint inclusive ranges.
BinSet parse_bins(const std::string& event, std::string_view text) {
  BinSet set;
  while (!text.empty()) {
    const auto plus = text.find('+');
    std::string_view part =
        plus == std::string_view::npos ? text : text.substr(0, plus);
    text = plus == std::string_view::npos ? std::string_view{}
                                          : text.substr(plus + 1);
    const auto dash = part.find('-');
    std::uint32_t lo;
    std::uint32_t hi;
    if (dash == std::string_view::npos) {
      lo = hi = parse_u32(event, "bins", part);
    } else {
      lo = parse_u32(event, "bins", part.substr(0, dash));
      hi = parse_u32(event, "bins", part.substr(dash + 1));
      if (hi < lo) fail(event, "bins: descending range");
    }
    set.ranges.emplace_back(lo, hi);
  }
  if (set.empty()) fail(event, "bins: empty set");
  std::sort(set.ranges.begin(), set.ranges.end());
  for (std::size_t i = 1; i < set.ranges.size(); ++i) {
    if (set.ranges[i].first <= set.ranges[i - 1].second) {
      fail(event, "bins: overlapping ranges");
    }
  }
  return set;
}

// `D` or `D1-D2` (inclusive, sampled).
void parse_down(const std::string& event, std::string_view text,
                Event& out) {
  const auto dash = text.find('-');
  if (dash == std::string_view::npos) {
    out.down_lo = out.down_hi = parse_u64(event, "down", text);
  } else {
    out.down_lo = parse_u64(event, "down", text.substr(0, dash));
    out.down_hi = parse_u64(event, "down", text.substr(dash + 1));
    if (out.down_hi < out.down_lo) fail(event, "down: descending range");
  }
  if (out.down_lo == 0) fail(event, "down must be at least 1 round");
}

struct Options {
  std::map<std::string, std::string, std::less<>> values;
  const std::string& event;

  [[nodiscard]] std::optional<std::string_view> take(std::string_view key) {
    const auto it = values.find(key);
    if (it == values.end()) return std::nullopt;
    std::string_view view = it->second;
    taken.push_back(std::string(key));
    return view;
  }
  [[nodiscard]] std::string_view require(std::string_view key) {
    const auto value = take(key);
    if (!value.has_value()) {
      fail(event, "missing required option '" + std::string(key) + "'");
    }
    return *value;
  }
  void finish() {
    for (const auto& [key, value] : values) {
      if (std::find(taken.begin(), taken.end(), key) == taken.end()) {
        fail(event, "unknown option '" + key + "'");
      }
    }
  }

  std::vector<std::string> taken;
};

Event parse_event(std::string_view raw) {
  const std::string event(trim(raw));
  if (event.empty()) fail(event, "empty event");

  // kind[@R] : options
  const auto colon = event.find(':');
  std::string head = colon == std::string::npos ? event
                                                : event.substr(0, colon);
  const std::string tail =
      colon == std::string::npos ? std::string{} : event.substr(colon + 1);

  Event out;
  const auto at_pos = head.find('@');
  bool has_at = at_pos != std::string::npos;
  if (has_at) {
    out.at = parse_u64(event, "@round", std::string_view(head).substr(at_pos + 1));
    if (out.at == 0) fail(event, "@round must be at least 1");
    head = head.substr(0, at_pos);
  }

  if (head == "crash") {
    out.kind = EventKind::kCrash;
  } else if (head == "crash-fullest") {
    out.kind = EventKind::kCrashFullest;
  } else if (head == "degrade") {
    out.kind = EventKind::kDegrade;
  } else if (head == "straggle") {
    out.kind = EventKind::kStraggle;
  } else if (head == "random-crash") {
    out.kind = EventKind::kRandomCrash;
  } else if (head == "rolling") {
    out.kind = EventKind::kRolling;
  } else {
    fail(event, "unknown event kind '" + head + "'");
  }

  const bool one_shot = out.kind == EventKind::kCrash ||
                        out.kind == EventKind::kCrashFullest ||
                        out.kind == EventKind::kDegrade ||
                        out.kind == EventKind::kRolling;
  if (one_shot && !has_at) {
    fail(event, "'" + head + "' needs a trigger round: " + head + "@R:...");
  }
  if (!one_shot && has_at) {
    fail(event, "'" + head + "' is persistent; use from=/until= instead of @");
  }

  // Split options on ','; bare keys (no '=') are flags.
  Options opts{{}, event, {}};
  std::string_view rest = tail;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    std::string_view part =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    part = trim(part);
    if (part.empty()) continue;
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) {
      opts.values.emplace(std::string(part), "");
    } else {
      opts.values.emplace(std::string(part.substr(0, eq)),
                          std::string(part.substr(eq + 1)));
    }
  }

  switch (out.kind) {
    case EventKind::kCrash:
      out.bins = parse_bins(event, opts.require("bins"));
      parse_down(event, opts.require("down"), out);
      out.retain = opts.take("retain").has_value();
      break;
    case EventKind::kCrashFullest:
      out.k = parse_u32(event, "k", opts.require("k"));
      if (out.k == 0) fail(event, "k must be at least 1");
      parse_down(event, opts.require("down"), out);
      out.retain = opts.take("retain").has_value();
      break;
    case EventKind::kDegrade:
      out.bins = parse_bins(event, opts.require("bins"));
      out.cap = parse_u32(event, "cap", opts.require("cap"));
      out.duration = parse_u64(event, "for", opts.require("for"));
      if (out.duration == 0) fail(event, "for must be at least 1 round");
      break;
    case EventKind::kStraggle:
      out.bins = parse_bins(event, opts.require("bins"));
      out.period = parse_u32(event, "period", opts.require("period"));
      if (out.period == 0) fail(event, "period must be at least 1");
      if (const auto v = opts.take("phase")) {
        out.phase = parse_u32(event, "phase", *v);
      }
      if (const auto v = opts.take("from")) {
        out.from = parse_u64(event, "from", *v);
      }
      if (const auto v = opts.take("for")) {
        out.duration = parse_u64(event, "for", *v);
        if (out.duration == 0) fail(event, "for must be at least 1 round");
      }
      break;
    case EventKind::kRandomCrash:
      out.p = parse_prob(event, "p", opts.require("p"));
      parse_down(event, opts.require("down"), out);
      out.retain = opts.take("retain").has_value();
      if (const auto v = opts.take("from")) {
        out.from = parse_u64(event, "from", *v);
      }
      if (const auto v = opts.take("until")) {
        out.until = parse_u64(event, "until", *v);
      }
      if (out.until < out.from) fail(event, "until precedes from");
      break;
    case EventKind::kRolling:
      out.width = parse_u32(event, "width", opts.require("width"));
      if (out.width == 0) fail(event, "width must be at least 1");
      out.gap = parse_u32(event, "gap", opts.require("gap"));
      out.count = parse_u32(event, "count", opts.require("count"));
      if (out.count == 0) fail(event, "count must be at least 1");
      parse_down(event, opts.require("down"), out);
      out.retain = opts.take("retain").has_value();
      break;
  }
  opts.finish();
  return out;
}

void append_bins(std::string& out, const BinSet& bins) {
  out += "bins=";
  bool first = true;
  for (const auto& [lo, hi] : bins.ranges) {
    if (!first) out += '+';
    first = false;
    out += std::to_string(lo);
    if (hi != lo) {
      out += '-';
      out += std::to_string(hi);
    }
  }
}

void append_down(std::string& out, const Event& e) {
  out += ",down=" + std::to_string(e.down_lo);
  if (e.down_hi != e.down_lo) out += '-' + std::to_string(e.down_hi);
  if (e.retain) out += ",retain";
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kCrash: return "crash";
    case EventKind::kCrashFullest: return "crash-fullest";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kStraggle: return "straggle";
    case EventKind::kRandomCrash: return "random-crash";
    case EventKind::kRolling: return "rolling";
  }
  return "?";
}

std::uint32_t BinSet::max_index() const noexcept {
  std::uint32_t max = 0;
  for (const auto& [lo, hi] : ranges) max = std::max(max, hi);
  return max;
}

FaultSchedule parse_schedule(std::string_view text) {
  FaultSchedule schedule;
  while (!text.empty()) {
    const auto semi = text.find(';');
    std::string_view part =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (trim(part).empty()) continue;
    schedule.events.push_back(parse_event(part));
  }
  return schedule;
}

std::string to_string(const FaultSchedule& schedule) {
  std::string out;
  for (const Event& e : schedule.events) {
    if (!out.empty()) out += ';';
    out += to_string(e.kind);
    switch (e.kind) {
      case EventKind::kCrash:
        out += '@' + std::to_string(e.at) + ':';
        append_bins(out, e.bins);
        append_down(out, e);
        break;
      case EventKind::kCrashFullest:
        out += '@' + std::to_string(e.at) + ":k=" + std::to_string(e.k);
        append_down(out, e);
        break;
      case EventKind::kDegrade:
        out += '@' + std::to_string(e.at) + ':';
        append_bins(out, e.bins);
        out += ",cap=" + std::to_string(e.cap) +
               ",for=" + std::to_string(e.duration);
        break;
      case EventKind::kStraggle:
        out += ':';
        append_bins(out, e.bins);
        out += ",period=" + std::to_string(e.period);
        if (e.phase != 0) out += ",phase=" + std::to_string(e.phase);
        if (e.from != 0) out += ",from=" + std::to_string(e.from);
        if (e.duration != 0) out += ",for=" + std::to_string(e.duration);
        break;
      case EventKind::kRandomCrash: {
        char prob[40];
        std::snprintf(prob, sizeof(prob), "%.17g", e.p);
        out += ":p=";
        out += prob;
        append_down(out, e);
        if (e.from != 0) out += ",from=" + std::to_string(e.from);
        if (e.until != UINT64_MAX) out += ",until=" + std::to_string(e.until);
        break;
      }
      case EventKind::kRolling:
        out += '@' + std::to_string(e.at) + ":width=" +
               std::to_string(e.width) + ",gap=" + std::to_string(e.gap) +
               ",count=" + std::to_string(e.count);
        append_down(out, e);
        break;
    }
  }
  return out;
}

}  // namespace iba::fault
