// Fault-schedule grammar — the CLI/config surface of the fault
// subsystem (docs/ROBUSTNESS.md).
//
// A schedule is a semicolon-separated list of events:
//
//   crash@R:bins=SPEC,down=D[,retain]        one-shot crash of a bin set
//   crash-fullest@R:k=K,down=D[,retain]      crash the K currently-fullest
//   degrade@R:bins=SPEC,cap=C,for=T          capacity drops to C for T rounds
//   straggle:bins=SPEC,period=J[,phase=P][,from=R][,for=T]
//                                            serve only every J-th round
//   random-crash:p=P,down=D[,retain][,from=R][,until=R2]
//                                            per-round per-bin crash coin
//   rolling@R:width=W,gap=G,count=K,down=D[,retain]
//                                            rack outages: K crashes of W
//                                            consecutive bins, G rounds apart
//
// SPEC is `+`-joined indices / inclusive ranges (`0-9+12+100-119`).
// D is either a fixed downtime (`down=20`) or an inclusive range
// (`down=5-40`) sampled per crashed bin from the fault stream.
// `retain` keeps a crashed bin's buffer through the outage (state
// retention); without it the buffer drains back into the pool (state
// loss). All rounds are 1-based process rounds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace iba::fault {

/// Parse failure of a schedule string; the message names the offending
/// event and key. CLI front-ends map this to exit code 2.
class ScheduleError : public std::runtime_error {
 public:
  explicit ScheduleError(const std::string& what)
      : std::runtime_error("fault schedule: " + what) {}
};

enum class EventKind : std::uint8_t {
  kCrash,         ///< one-shot crash of an explicit bin set
  kCrashFullest,  ///< one-shot crash of the k currently-fullest bins
  kDegrade,       ///< transient capacity degradation
  kStraggle,      ///< periodic service (serve every j-th round)
  kRandomCrash,   ///< per-round per-bin crash coin from the fault stream
  kRolling,       ///< rolling rack outage (expands to kCrash at plan build)
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// Set of bin indices as sorted, disjoint inclusive ranges.
struct BinSet {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;

  [[nodiscard]] bool empty() const noexcept { return ranges.empty(); }
  /// Largest index mentioned; precondition: !empty().
  [[nodiscard]] std::uint32_t max_index() const noexcept;
  /// Calls fn(bin) for every member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [lo, hi] : ranges) {
      for (std::uint32_t bin = lo; bin <= hi; ++bin) fn(bin);
    }
  }
};

/// One parsed schedule event. Fields are meaningful per kind (see the
/// grammar above); unused fields keep their defaults.
struct Event {
  EventKind kind = EventKind::kCrash;
  std::uint64_t at = 0;        ///< trigger round (one-shot kinds)
  BinSet bins;                 ///< crash / degrade / straggle
  std::uint32_t k = 0;         ///< crash-fullest count
  std::uint64_t down_lo = 1;   ///< downtime, rounds (lo == hi: fixed)
  std::uint64_t down_hi = 1;   ///< sampled from [lo, hi] otherwise
  bool retain = false;         ///< keep buffer through the outage
  std::uint32_t cap = 0;       ///< degraded capacity
  std::uint64_t duration = 0;  ///< degrade `for` / straggle `for` (0 = ∞)
  double p = 0.0;              ///< random-crash probability
  std::uint64_t from = 0;      ///< first active round (0 = start)
  std::uint64_t until = UINT64_MAX;  ///< last active round (random-crash)
  std::uint32_t period = 0;    ///< straggle period j
  std::uint32_t phase = 0;     ///< straggle phase offset
  std::uint32_t width = 0;     ///< rolling rack width
  std::uint32_t gap = 0;       ///< rolling inter-outage gap, rounds
  std::uint32_t count = 0;     ///< rolling outage count
};

struct FaultSchedule {
  std::vector<Event> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

/// Parses the grammar above. Throws ScheduleError with a message naming
/// the offending event/key on any malformed input.
[[nodiscard]] FaultSchedule parse_schedule(std::string_view text);

/// Canonical round-trippable rendering (logging, plan provenance).
[[nodiscard]] std::string to_string(const FaultSchedule& schedule);

}  // namespace iba::fault
