// FaultPlan — deterministic fault injection for CAPPED (docs/
// ROBUSTNESS.md). Executes a parsed FaultSchedule round by round,
// publishing per-bin flags and effective capacities through
// core::RoundFaultProvider.
//
// Determinism contract:
//  * All randomness (sampled downtimes, random-crash coins) comes from
//    the plan's own xoshiro256++ stream, seeded via a splitmix64 hash of
//    the plan seed — the allocation engine is never touched, so
//    attaching a plan that fires no event leaves the trajectory
//    byte-identical to an unfaulted run, and the scalar / fused /
//    sharded kernels stay byte-identical to each other under any
//    schedule.
//  * Random-crash coins are drawn in ascending bin order over the
//    currently-up bins; crash-fullest breaks load ties toward the lower
//    bin index. Given the same (schedule, n, capacity, seed) and call
//    sequence, every decision is reproducible.
//  * state()/restore() capture the dynamic state (engine, outages,
//    degradations, counters) so a checkpointed run resumes the fault
//    trajectory bit-for-bit; the schedule itself is reconstructed from
//    its text form by the caller.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/fault_hooks.hpp"
#include "fault/schedule.hpp"
#include "rng/xoshiro256.hpp"

namespace iba::fault {

class FaultPlan final : public core::RoundFaultProvider {
 public:
  /// Validates the schedule against (n, capacity) — bin indices in
  /// range, degraded caps ≤ capacity, k ≤ n — and pre-expands rolling
  /// outages into per-rack crash events. Throws ScheduleError on
  /// violations. `capacity` is the validation ceiling and the initial
  /// effective-capacity baseline; with an adaptive controller attached
  /// to the process, pass the controller's c_max (the largest capacity
  /// the run can reach) — begin_round() re-baselines healthy bins to
  /// the actual per-round capacity it is handed.
  FaultPlan(FaultSchedule schedule, std::uint32_t n, std::uint32_t capacity,
            std::uint64_t seed);

  // -- core::RoundFaultProvider --
  void begin_round(
      std::uint64_t round, std::uint32_t capacity,
      const std::function<std::uint64_t(std::uint32_t)>& load) override;
  [[nodiscard]] bool active() const noexcept override { return active_; }
  [[nodiscard]] const std::uint8_t* flags() const noexcept override {
    return flags_.data();
  }
  [[nodiscard]] const std::uint32_t* effective_capacity()
      const noexcept override {
    return eff_cap_.data();
  }
  [[nodiscard]] std::uint64_t faulted_bins() const noexcept override {
    return faulted_bins_;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// Lifetime counters (telemetry / benches).
  [[nodiscard]] std::uint64_t crashes_total() const noexcept {
    return crashes_;
  }
  [[nodiscard]] std::uint64_t repairs_total() const noexcept {
    return repairs_;
  }
  [[nodiscard]] std::uint64_t straggler_skips_total() const noexcept {
    return straggler_skips_;
  }
  /// Bins currently out (down), for observability.
  [[nodiscard]] std::uint64_t down_bins() const noexcept {
    return down_list_.size();
  }

  /// Serializable dynamic state (checkpoint resume). Transient per-round
  /// flags (drain marks, straggler skips) are deliberately absent: they
  /// are recomputed by the next begin_round(), exactly as in the
  /// uninterrupted run.
  struct State {
    std::array<std::uint64_t, 4> engine_state{};
    std::uint64_t last_round = 0;
    std::uint64_t crashes = 0;
    std::uint64_t repairs = 0;
    std::uint64_t straggler_skips = 0;
    struct Down {
      std::uint32_t bin = 0;
      std::uint64_t until = 0;  ///< repaired at begin of this round
    };
    struct Degraded {
      std::uint32_t bin = 0;
      std::uint64_t until = 0;  ///< last degraded round (inclusive)
      std::uint32_t cap = 0;
    };
    std::vector<Down> down;          ///< ascending bin
    std::vector<Degraded> degraded;  ///< ascending bin
  };
  [[nodiscard]] State state() const;
  /// Overlays `state` onto a freshly constructed plan with the same
  /// (schedule, n, capacity, seed). Throws ContractViolation when the
  /// state references out-of-range bins.
  void restore(const State& state);

 private:
  void crash_bin(std::uint32_t bin, std::uint64_t round, const Event& e);
  void apply_degrade(std::uint32_t bin, std::uint64_t round, const Event& e);

  FaultSchedule schedule_;
  std::vector<Event> one_shot_;    ///< kCrash/kCrashFullest/kDegrade,
                                   ///< rolling pre-expanded, by round
  std::vector<const Event*> persistent_;  ///< straggle / random-crash
  std::uint32_t n_;
  std::uint32_t capacity_;
  std::uint64_t seed_;
  rng::Xoshiro256pp engine_;

  std::vector<std::uint8_t> flags_;     // FaultFlags masks, per bin
  std::vector<std::uint32_t> eff_cap_;  // acceptance bound, per bin
  std::vector<std::uint64_t> down_until_;      // 0 = up
  std::vector<std::uint64_t> degraded_until_;  // 0 = not degraded
  std::vector<std::uint32_t> degraded_cap_;
  std::vector<std::uint32_t> down_list_;      // unordered
  std::vector<std::uint32_t> degraded_list_;  // unordered
  std::vector<std::uint32_t> drained_scratch_;   // kDrain marks this round
  std::vector<std::uint32_t> straggle_scratch_;  // transient kNoServe marks
  std::vector<std::pair<std::uint64_t, std::uint32_t>> fullest_scratch_;

  std::uint64_t last_round_ = 0;
  bool active_ = false;
  std::uint64_t faulted_bins_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t straggler_skips_ = 0;
};

}  // namespace iba::fault
