#include "fault/fault_plan.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"
#include "rng/splitmix64.hpp"

namespace iba::fault {

namespace {

// Domain-separation salt: the fault stream must differ from the
// allocation engine even when both are seeded from the same user seed.
constexpr std::uint64_t kFaultStreamSalt = 0xFA171D57A7E5EEDull;

using core::FaultFlags;

}  // namespace

FaultPlan::FaultPlan(FaultSchedule schedule, std::uint32_t n,
                     std::uint32_t capacity, std::uint64_t seed)
    : schedule_(std::move(schedule)),
      n_(n),
      capacity_(capacity),
      seed_(seed),
      engine_(rng::splitmix64_hash(seed ^ kFaultStreamSalt)) {
  IBA_EXPECT(n > 0, "FaultPlan: n must be positive");
  IBA_EXPECT(capacity > 0 && capacity != 0xFFFFFFFFu,
             "FaultPlan: requires finite capacity");
  for (const Event& e : schedule_.events) {
    if (!e.bins.empty() && e.bins.max_index() >= n_) {
      throw ScheduleError("event '" + std::string(to_string(e.kind)) +
                          "': bin index " + std::to_string(e.bins.max_index()) +
                          " out of range (n = " + std::to_string(n_) + ")");
    }
    switch (e.kind) {
      case EventKind::kCrash:
        one_shot_.push_back(e);
        break;
      case EventKind::kCrashFullest:
        if (e.k > n_) {
          throw ScheduleError("event 'crash-fullest': k exceeds n");
        }
        one_shot_.push_back(e);
        break;
      case EventKind::kDegrade:
        if (e.cap > capacity_) {
          throw ScheduleError("event 'degrade': cap exceeds the capacity " +
                              std::to_string(capacity_));
        }
        one_shot_.push_back(e);
        break;
      case EventKind::kStraggle:
      case EventKind::kRandomCrash:
        persistent_.push_back(&e);
        break;
      case EventKind::kRolling: {
        // Expand into one crash event per rack, count outages spaced gap
        // rounds apart; rack i covers width consecutive bins starting at
        // (i * width) mod n, clipped to [0, n).
        for (std::uint32_t i = 0; i < e.count; ++i) {
          Event crash = e;
          crash.kind = EventKind::kCrash;
          crash.at = e.at + static_cast<std::uint64_t>(i) * e.gap;
          const std::uint32_t start =
              static_cast<std::uint32_t>((static_cast<std::uint64_t>(i) *
                                          e.width) %
                                         n_);
          const std::uint32_t end =
              std::min(n_ - 1, start + e.width - 1);
          crash.bins.ranges = {{start, end}};
          one_shot_.push_back(crash);
        }
        break;
      }
    }
  }
  // Stable by trigger round, preserving schedule order within a round.
  std::stable_sort(one_shot_.begin(), one_shot_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });

  flags_.assign(n_, 0);
  eff_cap_.assign(n_, capacity_);
  down_until_.assign(n_, 0);
  degraded_until_.assign(n_, 0);
  degraded_cap_.assign(n_, 0);
}

void FaultPlan::crash_bin(std::uint32_t bin, std::uint64_t round,
                          const Event& e) {
  if (down_until_[bin] != 0) return;  // already down: outage unchanged
  std::uint64_t downtime = e.down_lo;
  if (e.down_hi > e.down_lo) {
    downtime = e.down_lo +
               rng::bounded(engine_, e.down_hi - e.down_lo + 1);
  }
  down_until_[bin] = round + downtime;
  flags_[bin] |= FaultFlags::kNoServe;
  if (!e.retain) {
    // State loss: the delete phase drains the buffer this round.
    flags_[bin] |= FaultFlags::kDrain;
    drained_scratch_.push_back(bin);
  }
  eff_cap_[bin] = 0;
  down_list_.push_back(bin);
  ++crashes_;
}

void FaultPlan::apply_degrade(std::uint32_t bin, std::uint64_t round,
                              const Event& e) {
  if (degraded_until_[bin] == 0) degraded_list_.push_back(bin);
  degraded_until_[bin] = round + e.duration - 1;
  degraded_cap_[bin] = e.cap;
  // A down bin keeps eff_cap 0; repair restores the degraded value. The
  // min is a no-op at fixed capacity (degrade caps are validated against
  // the ceiling); it binds when a controller has shrunk c below e.cap.
  if (down_until_[bin] == 0) eff_cap_[bin] = std::min(e.cap, capacity_);
}

void FaultPlan::begin_round(
    std::uint64_t round, std::uint32_t capacity,
    const std::function<std::uint64_t(std::uint32_t)>& load) {
  IBA_EXPECT(last_round_ == 0 || round == last_round_ + 1,
             "FaultPlan: rounds must advance one at a time");
  last_round_ = round;

  // 0. Re-baseline on a capacity change (adaptive control): effective
  // capacities are maintained incrementally against capacity_, so when
  // the controller retunes c every healthy bin must be refilled with the
  // new value (degraded bins cap at min(degraded c_i, c); down bins stay
  // 0). O(n), but only on the controller's rare decision rounds — a
  // fixed-capacity run never takes this branch.
  if (capacity != capacity_) {
    capacity_ = capacity;
    for (std::uint32_t bin = 0; bin < n_; ++bin) {
      if (down_until_[bin] != 0) continue;
      eff_cap_[bin] = degraded_until_[bin] >= round
                          ? std::min(degraded_cap_[bin], capacity_)
                          : capacity_;
    }
  }

  // 1. Clear the previous round's transient marks.
  for (const std::uint32_t bin : drained_scratch_) {
    flags_[bin] = static_cast<std::uint8_t>(flags_[bin] &
                                            ~FaultFlags::kDrain);
  }
  drained_scratch_.clear();
  for (const std::uint32_t bin : straggle_scratch_) {
    flags_[bin] = static_cast<std::uint8_t>(flags_[bin] &
                                            ~FaultFlags::kNoServe);
  }
  straggle_scratch_.clear();

  // 2. Repairs due this round.
  std::erase_if(down_list_, [&](std::uint32_t bin) {
    if (down_until_[bin] > round) return false;
    down_until_[bin] = 0;
    flags_[bin] = 0;
    eff_cap_[bin] = degraded_until_[bin] >= round
                        ? std::min(degraded_cap_[bin], capacity_)
                        : capacity_;
    ++repairs_;
    return true;
  });

  // 3. Expired degradations.
  std::erase_if(degraded_list_, [&](std::uint32_t bin) {
    if (degraded_until_[bin] >= round) return false;
    degraded_until_[bin] = 0;
    if (down_until_[bin] == 0) eff_cap_[bin] = capacity_;
    return true;
  });

  // 4. One-shot events triggering this round (schedule order within the
  // round; the list is sorted by trigger round).
  for (const Event& e : one_shot_) {
    if (e.at != round) continue;
    switch (e.kind) {
      case EventKind::kCrash:
        e.bins.for_each([&](std::uint32_t bin) { crash_bin(bin, round, e); });
        break;
      case EventKind::kCrashFullest: {
        // k currently-up fullest bins; load ties break toward the lower
        // index so the selection is deterministic.
        fullest_scratch_.clear();
        for (std::uint32_t bin = 0; bin < n_; ++bin) {
          if (down_until_[bin] == 0) fullest_scratch_.emplace_back(load(bin), bin);
        }
        const std::size_t k =
            std::min<std::size_t>(e.k, fullest_scratch_.size());
        std::partial_sort(fullest_scratch_.begin(),
                          fullest_scratch_.begin() +
                              static_cast<std::ptrdiff_t>(k),
                          fullest_scratch_.end(),
                          [](const auto& a, const auto& b) {
                            return a.first != b.first ? a.first > b.first
                                                      : a.second < b.second;
                          });
        fullest_scratch_.resize(k);
        // Crash in ascending bin order so sampled downtimes consume the
        // fault stream in a canonical order.
        std::sort(fullest_scratch_.begin(), fullest_scratch_.end(),
                  [](const auto& a, const auto& b) {
                    return a.second < b.second;
                  });
        for (const auto& [l, bin] : fullest_scratch_) crash_bin(bin, round, e);
        break;
      }
      case EventKind::kDegrade:
        e.bins.for_each(
            [&](std::uint32_t bin) { apply_degrade(bin, round, e); });
        break;
      default:
        IBA_ASSERT(false);  // rolling was expanded; others not one-shot
        break;
    }
  }

  // 5. Random crashes: one coin per currently-up bin, ascending bin
  // order, from the fault stream only.
  for (const Event* e : persistent_) {
    if (e->kind != EventKind::kRandomCrash) continue;
    const std::uint64_t from = e->from == 0 ? 1 : e->from;
    if (round < from || round > e->until) continue;
    for (std::uint32_t bin = 0; bin < n_; ++bin) {
      if (down_until_[bin] != 0) continue;
      if (rng::uniform01(engine_) < e->p) crash_bin(bin, round, *e);
    }
  }

  // 6. Stragglers: off-beat rounds mark a transient no-serve. Bins
  // already flagged (down this round) are left alone.
  for (const Event* e : persistent_) {
    if (e->kind != EventKind::kStraggle) continue;
    const std::uint64_t from = e->from == 0 ? 1 : e->from;
    if (round < from) continue;
    if (e->duration != 0 && round >= from + e->duration) continue;
    if ((round - e->phase) % e->period == 0) continue;  // on-beat: serves
    e->bins.for_each([&](std::uint32_t bin) {
      if (flags_[bin] != 0) return;
      flags_[bin] |= FaultFlags::kNoServe;
      straggle_scratch_.push_back(bin);
      ++straggler_skips_;
    });
  }

  faulted_bins_ = down_list_.size() + straggle_scratch_.size();
  active_ = faulted_bins_ > 0 || !degraded_list_.empty();
}

FaultPlan::State FaultPlan::state() const {
  State s;
  s.engine_state = engine_.state();
  s.last_round = last_round_;
  s.crashes = crashes_;
  s.repairs = repairs_;
  s.straggler_skips = straggler_skips_;
  for (const std::uint32_t bin : down_list_) {
    s.down.push_back({bin, down_until_[bin]});
  }
  std::sort(s.down.begin(), s.down.end(),
            [](const State::Down& a, const State::Down& b) {
              return a.bin < b.bin;
            });
  for (const std::uint32_t bin : degraded_list_) {
    s.degraded.push_back({bin, degraded_until_[bin], degraded_cap_[bin]});
  }
  std::sort(s.degraded.begin(), s.degraded.end(),
            [](const State::Degraded& a, const State::Degraded& b) {
              return a.bin < b.bin;
            });
  return s;
}

void FaultPlan::restore(const State& state) {
  engine_ = rng::Xoshiro256pp(state.engine_state);
  last_round_ = state.last_round;
  crashes_ = state.crashes;
  repairs_ = state.repairs;
  straggler_skips_ = state.straggler_skips;
  flags_.assign(n_, 0);
  eff_cap_.assign(n_, capacity_);
  down_until_.assign(n_, 0);
  degraded_until_.assign(n_, 0);
  degraded_cap_.assign(n_, 0);
  down_list_.clear();
  degraded_list_.clear();
  drained_scratch_.clear();
  straggle_scratch_.clear();
  for (const State::Degraded& d : state.degraded) {
    IBA_EXPECT(d.bin < n_, "FaultPlan: restored degraded bin out of range");
    degraded_until_[d.bin] = d.until;
    degraded_cap_[d.bin] = d.cap;
    eff_cap_[d.bin] = std::min(d.cap, capacity_);
    degraded_list_.push_back(d.bin);
  }
  for (const State::Down& d : state.down) {
    IBA_EXPECT(d.bin < n_, "FaultPlan: restored down bin out of range");
    down_until_[d.bin] = d.until;
    flags_[d.bin] = FaultFlags::kNoServe;
    eff_cap_[d.bin] = 0;
    down_list_.push_back(d.bin);
  }
  faulted_bins_ = down_list_.size();
  active_ = faulted_bins_ > 0 || !degraded_list_.empty();
}

}  // namespace iba::fault
