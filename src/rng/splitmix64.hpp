// SplitMix64 — Steele, Lea & Flood's 64-bit mixing generator.
//
// Used throughout iba as (a) the canonical seed expander for the larger
// engines and (b) a cheap stateless hash for deriving independent streams.
// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c (public domain).
#pragma once

#include <cstdint>
#include <limits>

namespace iba::rng {

/// Minimal 64-bit generator with a single word of state. Satisfies
/// std::uniform_random_bit_generator. Every seed gives a full-period
/// (2^64) sequence; distinct seeds give distinct sequences.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Current internal state (the *next* increment base), for checkpointing.
  [[nodiscard]] constexpr std::uint64_t state() const noexcept {
    return state_;
  }

 private:
  std::uint64_t state_;
};

/// One-shot SplitMix64 finalizer: hashes `x` through a single SplitMix64
/// step. Useful as a stateless 64-bit mixer (stream derivation, hashing).
[[nodiscard]] constexpr std::uint64_t splitmix64_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace iba::rng
