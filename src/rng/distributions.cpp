#include "rng/distributions.hpp"

#include <array>
#include <cmath>

namespace iba::rng::detail {

double stirling_approx_tail(double k) noexcept {
  static constexpr std::array<double, 10> kTail = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9.0) return kTail[static_cast<std::size_t>(k)];
  const double kp1 = k + 1;
  const double kp1sq = kp1 * kp1;
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / kp1;
}

}  // namespace iba::rng::detail
