#include "rng/seed.hpp"

#include "rng/splitmix64.hpp"

namespace iba::rng {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  // Two finalizer rounds decorrelate (master, stream) pairs that differ in
  // few bits; the golden-ratio offset separates stream 0 from the master.
  const std::uint64_t mixed = splitmix64_hash(master ^ 0x9e3779b97f4a7c15ULL);
  return splitmix64_hash(mixed + stream);
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master,
                                        std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(derive_seed(master, i));
  }
  return seeds;
}

std::uint64_t SeedSequence::next() noexcept {
  return derive_seed(master_, next_stream_++);
}

SeedSequence SeedSequence::split() noexcept {
  // The child's master is itself a derived seed from a reserved namespace
  // (high-bit tag) so parent next() streams and child streams are disjoint.
  return SeedSequence(
      derive_seed(master_ ^ 0x8000000000000000ULL, next_stream_++));
}

}  // namespace iba::rng
