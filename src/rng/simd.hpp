// Runtime dispatch for the vectorized RNG reduction paths.
//
// The backend is resolved once per process: the IBA_SIMD environment
// variable ("scalar" | "avx2" | "auto", default auto) is consulted first,
// then the CPU is probed. Tests and benchmarks can pin a backend
// programmatically with set_simd_backend(); the override wins over both
// the environment and the probe until reset_simd_backend().
//
// Every backend produces the exact same output stream — dispatch is a
// pure speed choice and never a semantic one.
#pragma once

namespace iba::rng {

enum class SimdBackend : int {
  kScalar = 0,  ///< portable 4x-unrolled Lemire loop
  kAvx2 = 1,    ///< AVX2 block reduction (x86-64 with AVX2 only)
};

/// The backend fill_bounded() will use right now (override > env > probe).
[[nodiscard]] SimdBackend active_simd_backend() noexcept;

/// True when the host CPU (and compiler) can run the AVX2 path.
[[nodiscard]] bool avx2_supported() noexcept;

/// Pins the backend for this process (test/bench hook). Requesting
/// kAvx2 on a host without AVX2 keeps the scalar path.
void set_simd_backend(SimdBackend backend) noexcept;

/// Drops any set_simd_backend() override; env + CPU probe decide again.
void reset_simd_backend() noexcept;

[[nodiscard]] const char* simd_backend_name(SimdBackend backend) noexcept;

/// The pure resolution rule (exposed for tests): IBA_SIMD value
/// ("scalar" | "avx2" | anything else | nullptr) plus the probe result.
/// "avx2" on a host without AVX2 degrades to scalar, never fails.
[[nodiscard]] SimdBackend resolve_simd_backend(const char* env_value,
                                               bool avx2_ok) noexcept;

}  // namespace iba::rng
