// xoshiro256++ / xoshiro256** — Blackman & Vigna's general-purpose 64-bit
// generators (256-bit state, period 2^256 − 1, jump-ahead support).
//
// xoshiro256++ is the default engine for all iba simulations: it is fast
// (sub-ns per draw), passes BigCrush/PractRand, and supports 2^128-step
// jumps for carving out provably disjoint parallel substreams.
// Reference: http://prng.di.unimi.it (public domain reference code).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"

namespace iba::rng {

namespace detail {

/// Common machinery of the xoshiro256 family: state layout, seeding,
/// linear-engine jumps. The output scrambler is supplied by the subclass.
class Xoshiro256Base {
 public:
  using result_type = std::uint64_t;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Seeds the 256-bit state by expanding `seed` through SplitMix64, as
  /// recommended by the authors (avoids correlated low-entropy states).
  explicit constexpr Xoshiro256Base(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  explicit constexpr Xoshiro256Base(
      const std::array<std::uint64_t, 4>& state) noexcept
      : s_(state) {}

  /// Advances the state by 2^128 steps. 2^128 generators seeded by
  /// successive jumps never overlap for any realistic draw count.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    apply_jump_polynomial(kJump);
  }

  /// Advances the state by 2^192 steps (for hierarchical stream splitting).
  constexpr void long_jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kLongJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
        0x39109bb02acbe635ULL};
    apply_jump_polynomial(kLongJump);
  }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state()
      const noexcept {
    return s_;
  }

  friend constexpr bool operator==(const Xoshiro256Base& a,
                                   const Xoshiro256Base& b) noexcept {
    return a.s_ == b.s_;
  }

 protected:
  constexpr std::uint64_t step_linear() noexcept {
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return s_[0];
  }

  std::array<std::uint64_t, 4> s_;

 private:
  constexpr void apply_jump_polynomial(
      const std::array<std::uint64_t, 4>& poly) noexcept {
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t word : poly) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
        (void)step_linear();
      }
    }
    s_ = acc;
  }
};

}  // namespace detail

/// xoshiro256++: rotl(s0 + s3, 23) + s0 output scrambler. The recommended
/// all-purpose generator; iba's default simulation engine.
class Xoshiro256pp final : public detail::Xoshiro256Base {
 public:
  using detail::Xoshiro256Base::Xoshiro256Base;

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
    (void)step_linear();
    return result;
  }
};

/// xoshiro256**: rotl(s1 * 5, 7) * 9 output scrambler. Offered as an
/// alternative with a multiplicative scrambler.
class Xoshiro256ss final : public detail::Xoshiro256Base {
 public:
  using detail::Xoshiro256Base::Xoshiro256Base;

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    (void)step_linear();
    return result;
  }
};

}  // namespace iba::rng
