#include "rng/alias.hpp"

#include <numeric>

namespace iba::rng {

AliasTable::AliasTable(const std::vector<double>& weights) {
  IBA_EXPECT(!weights.empty(), "AliasTable: needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    IBA_EXPECT(w >= 0.0, "AliasTable: weights must be non-negative");
    total += w;
  }
  IBA_EXPECT(total > 0.0, "AliasTable: weights must not all be zero");

  const std::size_t k = weights.size();
  normalized_.resize(k);
  for (std::size_t i = 0; i < k; ++i) normalized_[i] = weights[i] / total;

  // Vose: scale to mean 1, split into under-/over-full outcomes, and pair
  // each under-full slot with an over-full alias.
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(k);
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }

  probability_.assign(k, 1.0);
  alias_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    alias_[i] = static_cast<std::uint32_t>(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residual slots (rounding leftovers) keep probability 1.
}

}  // namespace iba::rng
