// AVX2 block reduction for fill_bounded: Lemire multiply-high over a
// buffer of pre-drawn engine words. Compiled in its own translation unit
// with a per-function target("avx2") attribute so the rest of the build
// keeps the baseline ISA; callers must consult rng::active_simd_backend()
// before entering.
#pragma once

#include <cstddef>
#include <cstdint>

namespace iba::rng::detail {

/// Lane width the AVX2 reducer commits per step. fill_bounded hands the
/// reducer batches that are multiples of this and replays the rest
/// through the scalar algorithm.
inline constexpr std::size_t kSimdBlock = 8;

/// Reduces words[0..count) to out[0..count) as floor(word * range / 2^64),
/// stopping early at the first kSimdBlock-wide block in which any lane
/// trips the Lemire rejection pre-test (low64 < range). Returns the number
/// of outputs committed — always a multiple of kSimdBlock, and at most
/// count rounded down to a multiple of kSimdBlock. The caller replays the
/// remaining words through the exact scalar algorithm, which keeps the
/// engine stream bit-identical to the scalar path.
std::size_t reduce_bounded_avx2(const std::uint64_t* words, std::size_t count,
                                std::uint64_t range,
                                std::uint32_t* out) noexcept;

}  // namespace iba::rng::detail
