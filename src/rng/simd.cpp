#include "rng/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace iba::rng {
namespace {

std::atomic<int> g_override{-1};

bool probe_avx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

SimdBackend resolve_simd_backend(const char* env_value,
                                 bool avx2_ok) noexcept {
  if (env_value != nullptr && std::strcmp(env_value, "scalar") == 0) {
    return SimdBackend::kScalar;
  }
  // "avx2", "auto", unset, and unrecognized values all defer to the
  // probe: the backend must never be a semantic choice, so the only
  // honored request is the downgrade.
  return avx2_ok ? SimdBackend::kAvx2 : SimdBackend::kScalar;
}

bool avx2_supported() noexcept {
  static const bool supported = probe_avx2();
  return supported;
}

SimdBackend active_simd_backend() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<SimdBackend>(forced);
  }
  static const int resolved = static_cast<int>(
      resolve_simd_backend(std::getenv("IBA_SIMD"), avx2_supported()));
  return static_cast<SimdBackend>(resolved);
}

void set_simd_backend(SimdBackend backend) noexcept {
  if (backend == SimdBackend::kAvx2 && !avx2_supported()) {
    backend = SimdBackend::kScalar;
  }
  g_override.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void reset_simd_backend() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

const char* simd_backend_name(SimdBackend backend) noexcept {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace iba::rng
