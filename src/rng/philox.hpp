// Philox4x32-10 — Salmon et al.'s counter-based generator ("Parallel random
// numbers: as easy as 1, 2, 3", SC'11).
//
// A counter-based engine produces random output as a pure function of
// (key, counter); any stream position is addressable in O(1). iba uses it
// for reproducible parallel replications: replication r simply uses key r,
// so results are independent of scheduling and thread count.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace iba::rng {

/// Philox4x32 with 10 rounds (the authors' recommended Crush-resistant
/// configuration). Exposes both the raw block function and a
/// std::uniform_random_bit_generator interface emitting 64-bit words.
class Philox4x32 {
 public:
  using result_type = std::uint64_t;
  using block_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Constructs a stream identified by a 64-bit key (stream id).
  explicit constexpr Philox4x32(std::uint64_t key) noexcept
      : key_{static_cast<std::uint32_t>(key),
             static_cast<std::uint32_t>(key >> 32)},
        counter_{0, 0, 0, 0},
        buffer_{},
        buffered_(0) {}

  /// The pure block function: encrypts `counter` under `key` (10 rounds).
  [[nodiscard]] static constexpr block_type block(block_type counter,
                                                  key_type key) noexcept {
    for (int round = 0; round < 10; ++round) {
      counter = single_round(counter, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return counter;
  }

  /// Sequential interface: emits the 128-bit blocks of this stream as
  /// pairs of 64-bit words.
  constexpr result_type operator()() noexcept {
    if (buffered_ == 0) {
      const block_type out = block(counter_, key_);
      increment_counter();
      buffer_[0] = (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
      buffer_[1] = (static_cast<std::uint64_t>(out[3]) << 32) | out[2];
      buffered_ = 2;
    }
    return buffer_[--buffered_];
  }

  /// Repositions the stream at 128-bit block `index` (O(1) seek).
  constexpr void seek(std::uint64_t block_index) noexcept {
    counter_ = {static_cast<std::uint32_t>(block_index),
                static_cast<std::uint32_t>(block_index >> 32), 0, 0};
    buffered_ = 0;
  }

  [[nodiscard]] constexpr key_type key() const noexcept { return key_; }

 private:
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

  [[nodiscard]] static constexpr block_type single_round(
      const block_type& ctr, const key_type& key) noexcept {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
    return {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
            static_cast<std::uint32_t>(p1),
            static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
            static_cast<std::uint32_t>(p0)};
  }

  constexpr void increment_counter() noexcept {
    for (auto& word : counter_) {
      if (++word != 0) break;  // carry into the next word on wrap
    }
  }

  key_type key_;
  block_type counter_;
  std::array<std::uint64_t, 2> buffer_;
  int buffered_;
};

}  // namespace iba::rng
