// Unbiased bounded uniform integers via Lemire's nearly-divisionless
// multiply-with-rejection ("Fast Random Integer Generation in an Interval",
// ACM TOMS 2019).
//
// bounded() is the single hottest operation in every balls-into-bins
// simulation (one draw per ball per round), so it avoids the modulo of
// std::uniform_int_distribution and only divides on the (rare) rejection
// path.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <random>
#include <span>

#include "common/assert.hpp"
#include "rng/bounded_simd.hpp"
#include "rng/simd.hpp"

namespace iba::rng {

/// Uniform draw from [0, range) using 64-bit multiply-high rejection.
/// Requires range >= 1. Exactly unbiased for every range.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint64_t bounded(Engine& engine,
                                              std::uint64_t range) noexcept {
  IBA_ASSERT(range >= 1);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"  // __int128 is a GCC/Clang builtin
  using u128 = unsigned __int128;
#pragma GCC diagnostic pop
  std::uint64_t x = engine();
  u128 m = static_cast<u128>(x) * static_cast<u128>(range);
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = engine();
      m = static_cast<u128>(x) * static_cast<u128>(range);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// 32-bit variant for dense index draws (bin choices with n < 2^32).
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint32_t bounded32(Engine& engine,
                                                std::uint32_t range) noexcept {
  return static_cast<std::uint32_t>(bounded(engine, range));
}

/// Portable batched fill: draws from [0, range), consuming the engine
/// stream exactly as `out.size()` sequential bounded32() calls would.
///
/// The hot loop handles four draws per iteration with no threshold
/// computation; a block that trips the `low < range` pre-test (probability
/// range/2^64 per draw, i.e. essentially never for bin counts) replays its
/// already-drawn words through the exact scalar algorithm so rejections
/// consume the stream in the same order.
template <std::uniform_random_bit_generator Engine>
constexpr void fill_bounded_scalar(Engine& engine,
                                   std::span<std::uint32_t> out,
                                   std::uint32_t range) noexcept {
  IBA_ASSERT(range >= 1);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"  // __int128 is a GCC/Clang builtin
  using u128 = unsigned __int128;
#pragma GCC diagnostic pop
  const auto r = static_cast<std::uint64_t>(range);
  std::size_t i = 0;
  const std::size_t blocks_end = out.size() & ~std::size_t{3};
  while (i < blocks_end) {
    const std::uint64_t x0 = engine();
    const std::uint64_t x1 = engine();
    const std::uint64_t x2 = engine();
    const std::uint64_t x3 = engine();
    const u128 m0 = static_cast<u128>(x0) * r;
    const u128 m1 = static_cast<u128>(x1) * r;
    const u128 m2 = static_cast<u128>(x2) * r;
    const u128 m3 = static_cast<u128>(x3) * r;
    if ((static_cast<std::uint64_t>(m0) < r) |
        (static_cast<std::uint64_t>(m1) < r) |
        (static_cast<std::uint64_t>(m2) < r) |
        (static_cast<std::uint64_t>(m3) < r)) [[unlikely]] {
      // Replay the four words through the scalar path. Every element
      // consumes at least one word, so the buffer is always exhausted
      // before the engine resumes — the stream position stays exact.
      const std::uint64_t buffered[4] = {x0, x1, x2, x3};
      std::size_t consumed = 0;
      const std::uint64_t threshold = (0 - r) % r;
      for (std::size_t k = 0; k < 4; ++k) {
        std::uint64_t x = consumed < 4 ? buffered[consumed++] : engine();
        u128 m = static_cast<u128>(x) * r;
        while (static_cast<std::uint64_t>(m) < threshold) {
          x = consumed < 4 ? buffered[consumed++] : engine();
          m = static_cast<u128>(x) * r;
        }
        out[i + k] = static_cast<std::uint32_t>(m >> 64);
      }
    } else {
      out[i + 0] = static_cast<std::uint32_t>(m0 >> 64);
      out[i + 1] = static_cast<std::uint32_t>(m1 >> 64);
      out[i + 2] = static_cast<std::uint32_t>(m2 >> 64);
      out[i + 3] = static_cast<std::uint32_t>(m3 >> 64);
    }
    i += 4;
  }
  for (; i < out.size(); ++i) {
    out[i] = bounded32(engine, range);
  }
}

/// AVX2-backed fill: buffers engine words (the xoshiro recurrence is
/// inherently serial) and vectorizes the Lemire multiply-high reduction
/// plus the rejection pre-test over 8-wide blocks. Any block in which a
/// lane might reject is handed back and replayed — buffered words first,
/// then fresh engine words — through the exact scalar algorithm, so the
/// produced values AND the engine stream position are bit-identical to
/// fill_bounded_scalar for every length and range.
template <std::uniform_random_bit_generator Engine>
void fill_bounded_avx2(Engine& engine, std::span<std::uint32_t> out,
                       std::uint32_t range) noexcept {
  IBA_ASSERT(range >= 1);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"  // __int128 is a GCC/Clang builtin
  using u128 = unsigned __int128;
#pragma GCC diagnostic pop
  const auto r = static_cast<std::uint64_t>(range);
  // 4 KiB of buffered words amortizes the dispatch + loop overhead while
  // staying comfortably inside L1.
  constexpr std::size_t kBatchWords = 512;
  alignas(32) std::uint64_t words[kBatchWords];
  std::size_t i = 0;
  while (out.size() - i >= detail::kSimdBlock) {
    const std::size_t batch = std::min(
        kBatchWords, (out.size() - i) & ~(detail::kSimdBlock - 1));
    for (std::size_t k = 0; k < batch; ++k) {
      words[k] = engine();
    }
    const std::size_t done =
        detail::reduce_bounded_avx2(words, batch, r, out.data() + i);
    i += done;
    if (done < batch) [[unlikely]] {
      // Replay the unreduced words through the scalar path. Every element
      // consumes at least one word, so the buffer is always exhausted
      // before the engine resumes — the stream position stays exact.
      std::size_t consumed = done;
      const std::uint64_t threshold = (0 - r) % r;
      const std::size_t pending = batch - done;
      for (std::size_t k = 0; k < pending; ++k) {
        std::uint64_t x = consumed < batch ? words[consumed++] : engine();
        u128 m = static_cast<u128>(x) * r;
        while (static_cast<std::uint64_t>(m) < threshold) {
          x = consumed < batch ? words[consumed++] : engine();
          m = static_cast<u128>(x) * r;
        }
        out[i + k] = static_cast<std::uint32_t>(m >> 64);
      }
      i += pending;
    }
  }
  for (; i < out.size(); ++i) {
    out[i] = bounded32(engine, range);
  }
}

/// Fills `out` with draws from [0, range) on the fastest available
/// backend (see rng/simd.hpp). Every backend consumes the engine stream
/// exactly as `out.size()` sequential bounded32() calls would and emits
/// identical bytes — callers may switch backends (or mix with bounded32)
/// freely without perturbing downstream draws.
template <std::uniform_random_bit_generator Engine>
void fill_bounded(Engine& engine, std::span<std::uint32_t> out,
                  std::uint32_t range) noexcept {
  // Below two SIMD blocks the batching cannot pay for itself.
  if (out.size() >= 2 * detail::kSimdBlock &&
      active_simd_backend() == SimdBackend::kAvx2) {
    fill_bounded_avx2(engine, out, range);
  } else {
    fill_bounded_scalar(engine, out, range);
  }
}

/// Uniform draw from the closed interval [lo, hi].
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint64_t uniform_in(Engine& engine,
                                                 std::uint64_t lo,
                                                 std::uint64_t hi) noexcept {
  IBA_ASSERT(lo <= hi);
  return lo + bounded(engine, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr double uniform01(Engine& engine) noexcept {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] — safe as an argument to log().
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr double uniform01_open_low(Engine& engine) noexcept {
  return static_cast<double>((engine() >> 11) + 1) * 0x1.0p-53;
}

}  // namespace iba::rng
