// Unbiased bounded uniform integers via Lemire's nearly-divisionless
// multiply-with-rejection ("Fast Random Integer Generation in an Interval",
// ACM TOMS 2019).
//
// bounded() is the single hottest operation in every balls-into-bins
// simulation (one draw per ball per round), so it avoids the modulo of
// std::uniform_int_distribution and only divides on the (rare) rejection
// path.
#pragma once

#include <concepts>
#include <cstdint>
#include <random>

#include "common/assert.hpp"

namespace iba::rng {

/// Uniform draw from [0, range) using 64-bit multiply-high rejection.
/// Requires range >= 1. Exactly unbiased for every range.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint64_t bounded(Engine& engine,
                                              std::uint64_t range) noexcept {
  IBA_ASSERT(range >= 1);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"  // __int128 is a GCC/Clang builtin
  using u128 = unsigned __int128;
#pragma GCC diagnostic pop
  std::uint64_t x = engine();
  u128 m = static_cast<u128>(x) * static_cast<u128>(range);
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = engine();
      m = static_cast<u128>(x) * static_cast<u128>(range);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// 32-bit variant for dense index draws (bin choices with n < 2^32).
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint32_t bounded32(Engine& engine,
                                                std::uint32_t range) noexcept {
  return static_cast<std::uint32_t>(bounded(engine, range));
}

/// Uniform draw from the closed interval [lo, hi].
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr std::uint64_t uniform_in(Engine& engine,
                                                 std::uint64_t lo,
                                                 std::uint64_t hi) noexcept {
  IBA_ASSERT(lo <= hi);
  return lo + bounded(engine, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr double uniform01(Engine& engine) noexcept {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] — safe as an argument to log().
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] constexpr double uniform01_open_low(Engine& engine) noexcept {
  return static_cast<double>((engine() >> 11) + 1) * 0x1.0p-53;
}

}  // namespace iba::rng
