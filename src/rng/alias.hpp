// Walker/Vose alias method — O(1) sampling from an arbitrary discrete
// distribution after O(k) preprocessing.
//
// Substrate for the non-uniform-bins extension (cf. Berenbrink,
// Brinkmann, Friedetzky, Nagel, "Balls into Non-uniform Bins", JPDC'14,
// the paper's reference [6]): heterogeneous server farms where request
// routing is weighted by server capacity.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::rng {

/// Immutable alias table over weights w_0..w_{k−1}; sample() returns i
/// with probability w_i / Σw in two uniform draws.
class AliasTable {
 public:
  /// Builds the table (Vose's stable two-stack construction). Weights
  /// must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  template <std::uniform_random_bit_generator Engine>
  [[nodiscard]] std::uint32_t sample(Engine& engine) const noexcept {
    const auto slot =
        static_cast<std::uint32_t>(bounded(engine, probability_.size()));
    return uniform01(engine) < probability_[slot] ? slot : alias_[slot];
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return probability_.size();
  }

  /// The normalized probability of outcome i (for tests/inspection).
  [[nodiscard]] double outcome_probability(std::uint32_t i) const noexcept {
    IBA_ASSERT(i < normalized_.size());
    return normalized_[i];
  }

 private:
  std::vector<double> probability_;  ///< acceptance threshold per slot
  std::vector<std::uint32_t> alias_; ///< fallback outcome per slot
  std::vector<double> normalized_;   ///< original weights, normalized
};

}  // namespace iba::rng
