// Deterministic seed derivation for independent random streams.
//
// Every iba experiment is reproducible from one master seed; replications,
// processes and workload generators each receive a *derived* seed so that
// their streams are statistically independent and stable under reordering
// (replication r always gets the same stream regardless of thread count).
#pragma once

#include <cstdint>
#include <vector>

namespace iba::rng {

/// Derives the seed of stream `stream` from `master`. Injective in
/// `stream` for fixed `master` (bijective SplitMix64 finalizer over a
/// distinct-offset encoding), so derived streams never collide.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t stream) noexcept;

/// Convenience: the first `count` derived seeds of `master`.
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t master,
                                                      std::size_t count);

/// Stateful view over derive_seed: hands out stream seeds sequentially.
/// Cheap to copy; copies continue independently from the same position.
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) noexcept
      : master_(master) {}

  /// Seed of the next stream.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Child sequence occupying a disjoint stream namespace — used for
  /// hierarchical splits (e.g. per-replication sub-streams).
  [[nodiscard]] SeedSequence split() noexcept;

  [[nodiscard]] constexpr std::uint64_t master() const noexcept {
    return master_;
  }

 private:
  std::uint64_t master_;
  std::uint64_t next_stream_ = 0;
};

}  // namespace iba::rng
