#include "rng/bounded_simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define IBA_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#endif

namespace iba::rng::detail {

#if defined(IBA_HAVE_AVX2_TARGET)

namespace {

// 64x64 -> high-64 multiply of four u64 lanes by a u32 range, without
// AVX-512. Split x = xh * 2^32 + xl; with A = xl * range and
// B = xh * range (both exact in 64 bits since range < 2^32):
//   low64  = (A + (B << 32)) mod 2^64
//   high64 = (B + (A >> 32)) >> 32
// B + (A >> 32) <= (2^32-1)^2 + (2^32-2) < 2^64, so the sum never wraps
// and high64 is exact. high64 < range <= 2^32 fits a u32 lane.
struct MulHiLanes {
  __m256i low64;
  __m256i high64;
};

__attribute__((target("avx2"))) inline MulHiLanes mulhi_lanes(
    __m256i x, __m256i range) noexcept {
  const __m256i a = _mm256_mul_epu32(x, range);  // xl * r (vpmuludq)
  const __m256i b = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), range);
  MulHiLanes result;
  result.low64 = _mm256_add_epi64(a, _mm256_slli_epi64(b, 32));
  result.high64 =
      _mm256_srli_epi64(_mm256_add_epi64(b, _mm256_srli_epi64(a, 32)), 32);
  return result;
}

}  // namespace

__attribute__((target("avx2"))) std::size_t reduce_bounded_avx2(
    const std::uint64_t* words, std::size_t count, std::uint64_t range,
    std::uint32_t* out) noexcept {
  const __m256i r = _mm256_set1_epi64x(static_cast<long long>(range));
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  // Unsigned low64 < range via signed compare on sign-flipped lanes.
  const __m256i r_flipped = _mm256_xor_si256(r, sign);
  const __m256i pick_even_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i pick_even_hi = _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6);

  std::size_t i = 0;
  for (; i + kSimdBlock <= count; i += kSimdBlock) {
    const __m256i x0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    const __m256i x1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i + 4));
    const MulHiLanes m0 = mulhi_lanes(x0, r);
    const MulHiLanes m1 = mulhi_lanes(x1, r);
    const __m256i rej0 =
        _mm256_cmpgt_epi64(r_flipped, _mm256_xor_si256(m0.low64, sign));
    const __m256i rej1 =
        _mm256_cmpgt_epi64(r_flipped, _mm256_xor_si256(m1.low64, sign));
    if (!_mm256_testz_si256(_mm256_or_si256(rej0, rej1),
                            _mm256_or_si256(rej0, rej1))) {
      break;  // a lane may reject: hand this block back for scalar replay
    }
    // Each high64 lane is < 2^32: compact the even dwords of both
    // vectors into one 8 x u32 vector, preserving draw order.
    const __m256i lo_half = _mm256_permutevar8x32_epi32(m0.high64,
                                                        pick_even_lo);
    const __m256i hi_half = _mm256_permutevar8x32_epi32(m1.high64,
                                                        pick_even_hi);
    const __m256i packed = _mm256_blend_epi32(lo_half, hi_half, 0xF0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  return i;
}

#else  // !IBA_HAVE_AVX2_TARGET

std::size_t reduce_bounded_avx2(const std::uint64_t* /*words*/,
                                std::size_t /*count*/,
                                std::uint64_t /*range*/,
                                std::uint32_t* /*out*/) noexcept {
  return 0;  // unreachable: dispatch never selects AVX2 on this platform
}

#endif

}  // namespace iba::rng::detail
