// Exact samplers for the discrete and continuous distributions used by the
// allocation processes and their workload generators.
//
// Binomial uses BINV inversion for small n·p and Hörmann's BTRS transformed
// rejection for large n·p (the algorithm also used by NumPy/TensorFlow);
// Poisson analogously uses Knuth multiplication / PTRS. All samplers are
// exact (no normal approximations) and consume an injected engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::rng {

/// Bernoulli(p) draw.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] bool bernoulli(Engine& engine, double p) noexcept {
  return uniform01(engine) < p;
}

/// Exponential(rate) draw (mean 1/rate).
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] double exponential(Engine& engine, double rate) noexcept {
  IBA_ASSERT(rate > 0.0);
  return -std::log(uniform01_open_low(engine)) / rate;
}

/// Geometric(p): number of failures before the first success, support {0,1,…}.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t geometric(Engine& engine, double p) noexcept {
  IBA_ASSERT(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double draws =
      std::floor(std::log(uniform01_open_low(engine)) / std::log1p(-p));
  return static_cast<std::uint64_t>(draws);
}

namespace detail {

/// Stirling series tail log(k!) − [k·log k − k + 0.5·log(2πk)], tabulated for
/// k ≤ 9 and expanded asymptotically beyond (as in TensorFlow's sampler).
[[nodiscard]] double stirling_approx_tail(double k) noexcept;

/// BTRS transformed-rejection binomial for p ∈ (0, 0.5], n·p ≥ 10.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t binomial_btrs(Engine& engine, std::uint64_t n,
                                          double p) noexcept {
  const double dn = static_cast<double>(n);
  const double stddev = std::sqrt(dn * p * (1 - p));
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = dn * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / (1 - p);
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((dn + 1) * p);
  for (;;) {
    const double u = uniform01(engine) - 0.5;
    double v = uniform01_open_low(engine);
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2 * a / us + b) * u + c);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0 || k > dn) continue;
    // Acceptance via the transformed density; exact up to the Stirling
    // tail correction, which is evaluated exactly below.
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1) / (r * (dn - m + 1))) +
        (dn + 1) * std::log((dn - m + 1) / (dn - k + 1)) +
        (k + 0.5) * std::log(r * (dn - k + 1) / (k + 1)) +
        stirling_approx_tail(m) + stirling_approx_tail(dn - m) -
        stirling_approx_tail(k) - stirling_approx_tail(dn - k);
    if (v <= upper) return static_cast<std::uint64_t>(k);
  }
}

/// BINV sequential inversion for small n·p (expected O(n·p) iterations).
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t binomial_binv(Engine& engine, std::uint64_t n,
                                          double p) noexcept {
  const double q = 1 - p;
  const double s = p / q;
  const double dn = static_cast<double>(n);
  double f = std::pow(q, dn);  // P[X = 0]; no underflow since n·p is small
  double u = uniform01(engine);
  std::uint64_t k = 0;
  for (;;) {
    if (u <= f) return k;
    u -= f;
    ++k;
    if (k > n) return n;  // guard against accumulated rounding
    f *= s * (dn - static_cast<double>(k) + 1) / static_cast<double>(k);
  }
}

}  // namespace detail

/// Binomial(n, p) draw; exact for all n, p.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t binomial(Engine& engine, std::uint64_t n,
                                     double p) {
  IBA_EXPECT(p >= 0.0 && p <= 1.0, "binomial: p must lie in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - binomial(engine, n, 1 - p);
  if (static_cast<double>(n) * p < 10.0)
    return detail::binomial_binv(engine, n, p);
  return detail::binomial_btrs(engine, n, p);
}

namespace detail {

/// Knuth multiplication method for small means.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t poisson_knuth(Engine& engine,
                                          double mean) noexcept {
  const double limit = std::exp(-mean);
  double prod = uniform01(engine);
  std::uint64_t k = 0;
  while (prod > limit) {
    ++k;
    prod *= uniform01(engine);
  }
  return k;
}

/// Hörmann's PTRS transformed rejection for mean ≥ 10.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t poisson_ptrs(Engine& engine,
                                         double mean) noexcept {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2);
  const double log_mean = std::log(mean);
  for (;;) {
    const double u = uniform01(engine) - 0.5;
    const double v = uniform01_open_low(engine);
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * log_mean - mean - std::lgamma(k + 1)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace detail

/// Poisson(mean) draw; exact for all means ≥ 0.
template <std::uniform_random_bit_generator Engine>
[[nodiscard]] std::uint64_t poisson(Engine& engine, double mean) {
  IBA_EXPECT(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 10.0) return detail::poisson_knuth(engine, mean);
  return detail::poisson_ptrs(engine, mean);
}

}  // namespace iba::rng
