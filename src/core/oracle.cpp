#include "core/oracle.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

OracleCapped::OracleCapped(const CappedConfig& config, Engine engine)
    : config_(config), engine_(engine), bins_(config.n) {
  config_.validate();
  IBA_EXPECT(config_.capacity != CappedConfig::kInfiniteCapacity,
             "OracleCapped: use the optimized Capped for infinite capacity");
}

RoundMetrics OracleCapped::step() {
  std::vector<std::uint32_t> choices(balls_to_throw());
  for (auto& choice : choices) choice = rng::bounded32(engine_, config_.n);
  return step_with_choices(choices);
}

RoundMetrics OracleCapped::step_with_choices(
    std::span<const std::uint32_t> choices) {
  IBA_EXPECT(choices.size() == balls_to_throw(),
             "OracleCapped: need one choice per thrown ball");
  ++round_;
  for (std::uint64_t k = 0; k < config_.lambda_n; ++k) {
    pool_.push_back({round_});
  }

  RoundMetrics m;
  m.round = round_;
  m.generated = config_.lambda_n;
  m.thrown = pool_.size();

  // Gather requests: per bin, the indices of the balls that chose it.
  std::vector<std::vector<std::size_t>> requests(config_.n);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    requests[choices[i]].push_back(i);
  }

  // Each bin sorts its requests by age and accepts the oldest
  // min{c − ℓ, ν}; ties (equal labels) broken by pool position.
  std::vector<bool> accepted(pool_.size(), false);
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    auto& req = requests[bin];
    if (req.empty()) continue;
    std::stable_sort(req.begin(), req.end(),
                     [&](std::size_t a, std::size_t b) {
                       return pool_[a].label < pool_[b].label;
                     });
    const std::uint64_t room =
        config_.capacity - std::min<std::uint64_t>(config_.capacity,
                                                   bins_[bin].size());
    const std::size_t take = std::min<std::size_t>(req.size(), room);
    for (std::size_t i = 0; i < take; ++i) {
      bins_[bin].push_back(pool_[req[i]].label);
      accepted[req[i]] = true;
      ++m.accepted;
    }
  }

  // Survivors stay in the pool (order preserved → still oldest-first).
  std::vector<Ball> survivors;
  survivors.reserve(pool_.size() - m.accepted);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (!accepted[i]) survivors.push_back(pool_[i]);
  }
  pool_ = std::move(survivors);

  // FIFO deletion.
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    if (bins_[bin].empty()) continue;
    const std::uint64_t label = bins_[bin].front();
    bins_[bin].pop_front();
    const std::uint64_t wait = round_ - label;
    waits_.record(wait);
    ++m.deleted;
    ++m.wait_count;
    m.wait_sum += static_cast<double>(wait);
    if (wait > m.wait_max) m.wait_max = wait;
  }

  m.pool_size = pool_.size();
  m.total_load = total_load();
  std::uint64_t max_load = 0;
  std::uint32_t empty = 0;
  for (const auto& q : bins_) {
    max_load = std::max<std::uint64_t>(max_load, q.size());
    if (q.empty()) ++empty;
  }
  m.max_load = max_load;
  m.empty_bins = empty;
  return m;
}

std::uint64_t OracleCapped::total_load() const noexcept {
  return std::accumulate(
      bins_.begin(), bins_.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& q) { return acc + q.size(); });
}

}  // namespace iba::core
