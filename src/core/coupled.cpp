#include "core/coupled.hpp"

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

namespace {

ModCappedConfig to_modcapped(const CappedConfig& config) {
  ModCappedConfig mc;
  mc.n = config.n;
  mc.capacity = config.capacity;
  mc.lambda_n = config.lambda_n;
  return mc;
}

}  // namespace

CoupledRun::CoupledRun(const CappedConfig& config, Engine engine)
    : capped_(config, Engine(0)),  // processes never draw: choices injected
      mod_(to_modcapped(config), Engine(0)),
      choice_engine_(engine) {}

CoupledRun::StepResult CoupledRun::step() {
  const std::uint64_t nu_capped = capped_.balls_to_throw();
  const std::uint64_t nu_mod = mod_.balls_to_throw();
  // MODCAPPED never throws fewer balls than CAPPED (induction invariant
  // m^C ≤ m^M plus its forced generation); the coupling relies on it.
  IBA_ASSERT(nu_mod >= nu_capped);

  choices_.resize(nu_mod);
  for (auto& choice : choices_) {
    choice = rng::bounded32(choice_engine_, capped_.n());
  }

  StepResult result;
  result.capped = capped_.step_with_choices(
      std::span(choices_).first(nu_capped));
  result.modcapped = mod_.step_with_choices(choices_);

  result.pool_dominated = capped_.pool_size() <= mod_.pool_size();
  result.loads_dominated = true;
  for (std::uint32_t bin = 0; bin < capped_.n(); ++bin) {
    if (capped_.load(bin) > mod_.load(bin)) {
      result.loads_dominated = false;
      break;
    }
  }
  if (!result.pool_dominated || !result.loads_dominated) ++violations_;
  return result;
}

}  // namespace iba::core
