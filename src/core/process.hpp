// Common vocabulary of the allocation processes: the default simulation
// engine, and the AllocationProcess concept the experiment runner is
// generic over (static polymorphism — no virtual dispatch in the hot loop).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "core/metrics.hpp"
#include "rng/xoshiro256.hpp"

namespace iba::core {

/// All simulations consume randomness through this engine type, injected
/// by value so every process owns an independent, reproducible stream.
using Engine = rng::Xoshiro256pp;

/// Non-uniform bin sampling hook (Zipf / hot-key skew — the scenario
/// engine's workload knob). A process that supports it calls fill() once
/// per round, before any kernel work, to draw the bin choice of every
/// thrown ball from the master engine ("decide before draw"): because
/// the full choice vector exists before acceptance starts, scalar /
/// fused / sharded kernels and every thread count consume the identical
/// engine stream and stay byte-identical under any sampler.
///
/// Implementations must draw randomness only from `engine`, must write
/// indices in [0, n) for the process's n, and must be stateless across
/// rounds (a pure function of the engine stream), so that reattaching
/// the same sampler after a checkpoint resume reproduces the trajectory.
class BinChoiceSampler {
 public:
  virtual ~BinChoiceSampler() = default;
  virtual void fill(Engine& engine, std::span<std::uint32_t> out) = 0;
};

/// A round-based infinite allocation process. step() advances one round
/// and reports what happened; n() and round() expose basic geometry.
template <typename P>
concept AllocationProcess = requires(P p, const P cp) {
  { p.step() } -> std::same_as<RoundMetrics>;
  { cp.n() } -> std::convertible_to<std::uint32_t>;
  { cp.round() } -> std::convertible_to<std::uint64_t>;
};

}  // namespace iba::core
