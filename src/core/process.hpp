// Common vocabulary of the allocation processes: the default simulation
// engine, and the AllocationProcess concept the experiment runner is
// generic over (static polymorphism — no virtual dispatch in the hot loop).
#pragma once

#include <concepts>
#include <cstdint>

#include "core/metrics.hpp"
#include "rng/xoshiro256.hpp"

namespace iba::core {

/// All simulations consume randomness through this engine type, injected
/// by value so every process owns an independent, reproducible stream.
using Engine = rng::Xoshiro256pp;

/// A round-based infinite allocation process. step() advances one round
/// and reports what happened; n() and round() expose basic geometry.
template <typename P>
concept AllocationProcess = requires(P p, const P cp) {
  { p.step() } -> std::same_as<RoundMetrics>;
  { cp.n() } -> std::convertible_to<std::uint32_t>;
  { cp.round() } -> std::convertible_to<std::uint64_t>;
};

}  // namespace iba::core
