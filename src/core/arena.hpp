// Large-allocation arena for the round kernels' bin and scatter state.
//
// The round hot path streams through a handful of multi-megabyte (at
// n = 10^8, multi-gigabyte) flat arrays. The arena backs those arrays
// with anonymous mmap blocks so that
//
//   - pages are faulted in lazily: a first-touch pass on the shard
//     workers places each shard's bin range on that worker's NUMA node
//     (first-touch policy), instead of wherever the constructor ran;
//   - opt-in madvise(MADV_HUGEPAGE) lets the kernel back the blocks
//     with transparent huge pages, cutting TLB pressure on the
//     counting-sort scatter;
//   - allocation traffic is observable: allocation_count()/live_bytes()
//     let benchmarks assert the steady state allocates nothing per
//     round.
//
// Everything degrades gracefully: without mmap support (or below the
// threshold, or with the arena disabled) allocations fall back to the
// global heap, and a failed madvise is recorded, not fatal. The arena
// changes where bytes live, never what they hold — ArenaConfig fields
// are execution hints and deliberately not part of checkpoints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace iba::core {

/// Execution hints for Arena (not serialized; see header comment).
struct ArenaConfig {
  bool enabled = false;     ///< back large buffers with anonymous mmap
  bool huge_pages = false;  ///< madvise(MADV_HUGEPAGE) each mapped block
};

/// Block allocator. All allocations return logically zeroed, 64-byte
/// aligned memory; mapped blocks are zero *without* being touched, so
/// the caller controls page placement via its own first-touch pass.
class Arena {
 public:
  explicit Arena(ArenaConfig config = {});
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Zeroed, 64-byte-aligned block. Mapped when the arena is enabled,
  /// the platform has mmap, and `bytes` >= kMmapThreshold; heap
  /// otherwise. bytes == 0 returns nullptr.
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Releases a block obtained from allocate(). nullptr is a no-op.
  void deallocate(void* ptr) noexcept;

  [[nodiscard]] const ArenaConfig& config() const noexcept {
    return config_;
  }

  /// Cumulative number of allocate() calls — flat after warmup proves
  /// the round loop allocates nothing.
  [[nodiscard]] std::uint64_t allocation_count() const noexcept {
    return allocation_count_;
  }
  /// Bytes currently held (mapped + heap blocks).
  [[nodiscard]] std::size_t live_bytes() const noexcept {
    return live_bytes_;
  }
  /// Bytes currently backed by mmap (0 when disabled/unsupported).
  [[nodiscard]] std::size_t mapped_bytes() const noexcept {
    return mapped_bytes_;
  }
  /// Currently mapped bytes for which MADV_HUGEPAGE was accepted.
  [[nodiscard]] std::size_t huge_advised_bytes() const noexcept {
    return huge_advised_bytes_;
  }
  /// True when this build/platform can mmap at all.
  [[nodiscard]] static bool mmap_supported() noexcept;

  /// Blocks smaller than this always come from the heap: the mmap +
  /// page-fault overhead only pays off for buffers that dominate the
  /// round's cache and TLB footprint.
  static constexpr std::size_t kMmapThreshold = std::size_t{1} << 20;

 private:
  struct Block {
    void* ptr = nullptr;
    std::size_t bytes = 0;  // rounded-up length as mapped/allocated
    bool mapped = false;
    bool huge = false;  // MADV_HUGEPAGE accepted for this block
  };

  ArenaConfig config_;
  std::vector<Block> blocks_;
  std::uint64_t allocation_count_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t mapped_bytes_ = 0;
  std::size_t huge_advised_bytes_ = 0;
};

/// Grow-only flat buffer over an optional Arena (heap without one).
/// Deliberately leaner than std::vector: elements are trivial, fresh
/// capacity is logically zeroed exactly once (at allocation), and
/// resize() never re-zeroes previously used elements — every consumer
/// in the round kernels writes its range before reading it.
template <typename T>
class ArenaBuffer {
  static_assert(std::is_trivial_v<T>,
                "ArenaBuffer holds trivially copyable scratch only");

 public:
  ArenaBuffer() = default;
  ~ArenaBuffer() { release(); }

  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  ArenaBuffer(ArenaBuffer&& other) noexcept { swap(other); }
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  /// Attach before the first allocation (nullptr = heap).
  void set_arena(Arena* arena) noexcept { arena_ = arena; }

  void resize(std::size_t n) {
    if (n > capacity_) {
      grow(n);
    }
    size_ = n;
  }

  void assign(std::size_t n, T value) {
    resize(n);
    for (std::size_t i = 0; i < size_; ++i) {
      data_[i] = value;
    }
  }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  void swap(ArenaBuffer& other) noexcept {
    std::swap(arena_, other.arena_);
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

 private:
  void grow(std::size_t n) {
    // Geometric growth so per-round high-water wobble (e.g. Poisson
    // arrivals) settles into a fixed capacity after warmup.
    std::size_t new_capacity = capacity_ + capacity_ / 2;
    if (new_capacity < n) {
      new_capacity = n;
    }
    T* fresh;
    if (arena_ != nullptr) {
      fresh = static_cast<T*>(arena_->allocate(new_capacity * sizeof(T)));
    } else {
      fresh = static_cast<T*>(
          ::operator new(new_capacity * sizeof(T),
                         std::align_val_t{64}));
      std::memset(fresh, 0, new_capacity * sizeof(T));
    }
    if (size_ > 0) {
      std::memcpy(fresh, data_, size_ * sizeof(T));
    }
    release();
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void release() noexcept {
    if (data_ == nullptr) {
      return;
    }
    if (arena_ != nullptr) {
      arena_->deallocate(data_);
    } else {
      ::operator delete(data_, std::align_val_t{64});
    }
    data_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace iba::core
