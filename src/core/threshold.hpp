// THRESHOLD[T] — the static parallel allocation protocol of Adler,
// Chakrabarti, Mitzenmacher, Rasmussen [RSA'98], referenced by the
// paper's related-work discussion as the closest static relative of
// CAPPED's acceptance rule.
//
// m balls are allocated to n bins in synchronous rounds: every
// still-unallocated ball picks a bin independently and uniformly at
// random, and each bin accepts at most T of its requests that round
// (rejected balls retry next round). For m = n, THRESHOLD[1] terminates
// within ln ln n + O(1) rounds w.h.p., which also bounds the maximum
// load — the behaviour bench_baselines checks.
//
// Lenzen, Parter, Yogev [SPAA'19] drive the heavily loaded case m ≫ n
// with a threshold of roughly m/n + O(1); run_threshold() covers that
// regime via the `threshold` parameter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"

namespace iba::core {

struct ThresholdResult {
  std::uint64_t rounds = 0;      ///< rounds until every ball was accepted
  std::uint64_t max_load = 0;    ///< fullest bin at termination
  bool completed = false;        ///< false if max_rounds was exhausted
  std::vector<std::uint64_t> loads;  ///< final load of every bin
};

/// Runs THRESHOLD[threshold] allocating `m` balls to `n` bins, giving up
/// after `max_rounds` (safety valve; the protocol terminates in
/// O(log log n) rounds for sane parameters).
[[nodiscard]] ThresholdResult run_threshold(std::uint32_t n, std::uint64_t m,
                                            std::uint64_t threshold,
                                            Engine engine,
                                            std::uint64_t max_rounds = 10000);

}  // namespace iba::core
