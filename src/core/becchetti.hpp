// Self-stabilizing repeated balls-into-bins — Becchetti, Clementi,
// Natale, Pasquale, Posta [SPAA'15], part of the paper's infinite-
// parallel related work.
//
// n balls live in n bins forever. Per round, every non-empty bin removes
// one ball and all removed balls are simultaneously re-thrown, each into
// a bin chosen independently and uniformly at random. From any start
// configuration (even all n balls in one bin) the system reaches maximum
// load O(log n) within O(n) rounds w.h.p. — the recovery behaviour
// bench_baselines measures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"

namespace iba::core {

/// The repeated balls-into-bins process over load counts (balls carry no
/// identity here; the observable is the load vector).
class RepeatedBallsIntoBins {
 public:
  /// Starts from an explicit load vector (its sum is the ball count).
  RepeatedBallsIntoBins(std::vector<std::uint64_t> initial_loads,
                        Engine engine);

  /// Convenience: the adversarial start with all n balls in bin 0.
  static RepeatedBallsIntoBins adversarial(std::uint32_t n, Engine engine);

  /// Convenience: the benign start with one ball per bin.
  static RepeatedBallsIntoBins uniform(std::uint32_t n, Engine engine);

  RoundMetrics step();

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }
  /// Alias of balls(): every ball is always stored in some bin.
  [[nodiscard]] std::uint64_t total_load() const noexcept { return balls_; }
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return loads_[i];
  }
  [[nodiscard]] std::uint64_t max_load() const noexcept;

 private:
  std::vector<std::uint64_t> loads_;
  Engine engine_;
  std::uint64_t round_ = 0;
  std::uint64_t balls_ = 0;
};

static_assert(AllocationProcess<RepeatedBallsIntoBins>);

}  // namespace iba::core
