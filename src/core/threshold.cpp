#include "core/threshold.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

ThresholdResult run_threshold(std::uint32_t n, std::uint64_t m,
                              std::uint64_t threshold, Engine engine,
                              std::uint64_t max_rounds) {
  IBA_EXPECT(n > 0, "run_threshold: n must be positive");
  IBA_EXPECT(threshold > 0, "run_threshold: threshold must be positive");

  ThresholdResult result;
  result.loads.assign(n, 0);

  // Balls are indistinguishable: only the per-round request counts
  // matter, so one counter per bin suffices.
  std::uint64_t unallocated = m;
  std::vector<std::uint64_t> requests(n);
  while (unallocated > 0 && result.rounds < max_rounds) {
    ++result.rounds;
    std::fill(requests.begin(), requests.end(), 0);
    for (std::uint64_t ball = 0; ball < unallocated; ++ball) {
      ++requests[rng::bounded32(engine, n)];
    }
    for (std::uint32_t bin = 0; bin < n; ++bin) {
      const std::uint64_t take = std::min(requests[bin], threshold);
      result.loads[bin] += take;
      unallocated -= take;
    }
  }

  result.completed = unallocated == 0;
  result.max_load =
      *std::max_element(result.loads.begin(), result.loads.end());
  return result;
}

}  // namespace iba::core
