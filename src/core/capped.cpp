#include "core/capped.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include <cstring>

#include "common/assert.hpp"
#include "rng/bounded.hpp"
#include "rng/distributions.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/log.hpp"

namespace iba::core {

namespace {

// Sharded delete-phase actions, pre-sampled in bin order.
constexpr std::uint8_t kActionNone = 0;
constexpr std::uint8_t kActionServe = 1;
constexpr std::uint8_t kActionCrash = 2;

// The bin-major kernel indexes candidates with uint32 offsets; rounds
// throwing more balls than that (never at supported n) use the scalar
// path, which is byte-identical anyway.
constexpr std::size_t kMaxKernelThrows = 0xFFFFFFFEu;

// Read+write prefetch hint; a no-op where the builtin is unavailable.
inline void prefetch_rw(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, 1);
#else
  (void)address;
#endif
}

}  // namespace

CappedConfig CappedConfig::from_rate(std::uint32_t n, double lambda,
                                     std::uint32_t capacity) {
  IBA_EXPECT(n > 0, "CappedConfig: n must be positive");
  IBA_EXPECT(lambda >= 0.0 && lambda <= 1.0,
             "CappedConfig: lambda must lie in [0, 1]");
  const double exact = lambda * static_cast<double>(n);
  const double rounded = std::round(exact);
  IBA_EXPECT(std::abs(exact - rounded) < 1e-6,
             "CappedConfig: lambda * n must be integral");
  CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = static_cast<std::uint64_t>(rounded);
  config.validate();
  return config;
}

void CappedConfig::validate() const {
  IBA_EXPECT(n > 0, "CappedConfig: n must be positive");
  IBA_EXPECT(capacity > 0, "CappedConfig: capacity must be positive");
  IBA_EXPECT(lambda_n <= n,
             "CappedConfig: lambda_n must not exceed n (lambda <= 1)");
  IBA_EXPECT(failure_probability >= 0.0 && failure_probability < 1.0,
             "CappedConfig: failure_probability must lie in [0, 1)");
  IBA_EXPECT(failure_mode != FailureMode::kCrashRequeue ||
                 capacity != kInfiniteCapacity,
             "CappedConfig: crash-requeue requires finite capacity");
  IBA_EXPECT(shards >= 1, "CappedConfig: shards must be at least 1");
  IBA_EXPECT(shards == 1 || kernel == RoundKernel::kBinMajor,
             "CappedConfig: sharding requires the bin-major kernel");
  IBA_EXPECT(backpressure == BackpressureMode::kNone || pool_limit > 0,
             "CappedConfig: backpressure requires a positive pool_limit");
  IBA_EXPECT(backpressure != BackpressureMode::kDeferRetry ||
                 backoff_rounds >= 1,
             "CappedConfig: defer-retry backoff must be at least 1 round");
  if (control.enabled()) {
    control.validate();
    IBA_EXPECT(capacity != kInfiniteCapacity,
               "CappedConfig: adaptive control requires finite capacity");
    IBA_EXPECT(capacity <= control.c_max,
               "CappedConfig: capacity must not exceed control.c_max");
    IBA_EXPECT(control.admission_target == 0 ||
                   backpressure != BackpressureMode::kNone,
               "CappedConfig: admission control requires a backpressure mode");
  }
}

Capped::Capped(const CappedConfig& config, Engine engine)
    : config_(config), engine_(engine) {
  config_.validate();
  if (config_.arena.enabled) {
    arena_ = std::make_unique<Arena>(config_.arena);
    choice_scratch_.set_arena(arena_.get());
    counts_.set_arena(arena_.get());
    starts_.set_arena(arena_.get());
    part16_.set_arena(arena_.get());
    cand_bucket_.set_arena(arena_.get());
    staged_.set_arena(arena_.get());
    staged_idx_.set_arena(arena_.get());
  }
  if (infinite()) {
    unbounded_.emplace(config_.n);
  } else {
    bounded_.emplace(config_.n, config_.capacity, arena_.get());
  }
  if (config_.shards > 1) {
    ensure_shard_pool();
  }
  if (arena_ != nullptr) {
    first_touch_state();
  }
  if (config_.control.enabled()) {
    controller_ = std::make_unique<control::Controller>(
        config_.control, config_.n, config_.pool_limit);
  }
}

Capped::Capped(const CappedSnapshot& snapshot)
    : Capped(snapshot.config, Engine(snapshot.engine_state)) {
  round_ = snapshot.round;
  generated_total_ = snapshot.generated_total;
  deleted_total_ = snapshot.deleted_total;
  shed_total_ = snapshot.shed_total;
  for (const auto& bucket : snapshot.pool) {
    pool_.add(bucket.label, bucket.count);
  }
  for (const auto& bucket : snapshot.deferred) {
    IBA_EXPECT(deferred_.empty() || deferred_.back().ready <= bucket.ready,
               "CappedSnapshot: deferred buckets must be ready-ordered");
    deferred_.push_back(bucket);
    deferred_total_ += bucket.count;
  }
  waits_.restore(
      stats::UintMoments::from_parts(snapshot.waits.count, snapshot.waits.sum,
                                     snapshot.waits.sumsq_hi,
                                     snapshot.waits.sumsq_lo),
      stats::Log2Histogram::from_counts(snapshot.waits.histogram,
                                        snapshot.waits.max));
  IBA_EXPECT(snapshot.bin_queues.size() == config_.n,
             "CappedSnapshot: bin_queues size must equal n");
  if (!infinite()) {
    // A snapshot taken mid-shrink can hold queues longer than the
    // (already lowered) acceptance capacity: those bins are still
    // draining. Widen the storage to the longest queue so the restore
    // fits; without a controller such a snapshot is corrupt.
    std::size_t longest = 0;
    for (const auto& queue : snapshot.bin_queues) {
      longest = std::max(longest, queue.size());
    }
    if (longest > bounded_->capacity()) {
      IBA_EXPECT(config_.control.enabled(),
                 "CappedSnapshot: bin queue exceeds capacity");
      IBA_EXPECT(longest <= config_.control.c_max,
                 "CappedSnapshot: bin queue exceeds control.c_max");
      bounded_->grow_capacity(static_cast<std::uint32_t>(longest));
    }
  }
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    for (const std::uint64_t label : snapshot.bin_queues[bin]) {
      if (infinite()) {
        unbounded_->push(bin, label);
      } else {
        bounded_->push(bin, label);
      }
    }
  }
  if (controller_ != nullptr) controller_->restore(snapshot.controller);
}

CappedSnapshot Capped::snapshot() const {
  CappedSnapshot snap;
  snap.config = config_;
  snap.round = round_;
  snap.generated_total = generated_total_;
  snap.deleted_total = deleted_total_;
  snap.shed_total = shed_total_;
  snap.engine_state = engine_.state();
  snap.pool.assign(pool_.buckets().begin(), pool_.buckets().end());
  snap.deferred.assign(deferred_.begin(), deferred_.end());
  snap.waits.count = waits_.moments().count();
  snap.waits.sum = waits_.moments().sum();
  snap.waits.sumsq_hi = waits_.moments().sumsq_hi();
  snap.waits.sumsq_lo = waits_.moments().sumsq_lo();
  snap.waits.max = waits_.histogram().max();
  snap.waits.histogram = waits_.histogram().counts();
  if (controller_ != nullptr) snap.controller = controller_->state();
  snap.bin_queues.resize(config_.n);
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    auto& queue = snap.bin_queues[bin];
    if (infinite()) {
      const auto view = unbounded_->items(bin);
      queue.assign(view.begin(), view.end());
    } else {
      const auto load = bounded_->load(bin);
      queue.reserve(load);
      for (std::uint32_t i = 0; i < load; ++i) {
        queue.push_back(bounded_->peek(bin, i));
      }
    }
  }
  return snap;
}

std::uint64_t Capped::sample_arrivals() {
  switch (config_.arrival) {
    case ArrivalModel::kDeterministic:
      return config_.lambda_n;
    case ArrivalModel::kBinomial:
      // n generators, each producing one ball w.p. λ (footnote 2).
      return rng::binomial(engine_, config_.n, config_.lambda());
    case ArrivalModel::kPoisson:
      return rng::poisson(engine_, static_cast<double>(config_.lambda_n));
  }
  return config_.lambda_n;
}

void Capped::begin_round_faults() {
  if (fault_plan_ == nullptr) {
    faults_round_ = false;
    return;
  }
  // The plan runs before the round's first allocation-engine draw and
  // must only consume its own stream; the load view reflects the state
  // at the end of the previous round.
  fault_plan_->begin_round(
      round_ + 1, config_.capacity,
      [this](std::uint32_t bin) { return load(bin); });
  faults_round_ = fault_plan_->active();
  fault_flags_ = faults_round_ ? fault_plan_->flags() : nullptr;
  fault_caps_ = faults_round_ ? fault_plan_->effective_capacity() : nullptr;
}

Capped::Admission Capped::admit_arrivals(std::uint64_t generated) {
  Admission adm;
  adm.generated = generated;
  adm.admitted = generated;
  if (config_.backpressure == BackpressureMode::kNone) return adm;

  const std::uint64_t next_round = round_ + 1;
  const std::uint64_t limit = config_.pool_limit;
  // The bound applies at admission only: survivors and requeued balls
  // already in flight are never dropped, so the pool can exceed the
  // limit transiently (e.g. after a mass crash); admission then stalls
  // until it drains back below.
  std::uint64_t free = pool_.total() < limit ? limit - pool_.total() : 0;

  // Retry pass: deferred balls whose backoff expired re-attempt
  // admission oldest-first, ahead of this round's fresh arrivals. The
  // eligible entries form one front group of the deque (every round
  // processes its group, and re-deferred remainders get a strictly
  // later ready round), so their labels are ascending and the merge
  // below preserves the pool's oldest-first order.
  if (!deferred_.empty() && deferred_.front().ready <= next_round) {
    readmit_scratch_.clear();
    while (!deferred_.empty() && deferred_.front().ready <= next_round) {
      DeferredBucket bucket = deferred_.front();
      deferred_.pop_front();
      const std::uint64_t take = bucket.count < free ? bucket.count : free;
      if (take > 0) {
        readmit_scratch_.push_back({bucket.label, take});
        free -= take;
        deferred_total_ -= take;
        bucket.count -= take;
      }
      if (bucket.count > 0) {
        bucket.ready = next_round + config_.backoff_rounds;
        deferred_.push_back(bucket);
      }
    }
    if (!readmit_scratch_.empty()) merge_sorted_into_pool(readmit_scratch_);
  }

  // Fresh arrivals take whatever room remains.
  adm.admitted = generated < free ? generated : free;
  const std::uint64_t excess = generated - adm.admitted;
  if (excess > 0) {
    if (config_.backpressure == BackpressureMode::kShed) {
      adm.shed = excess;
      shed_total_ += excess;
    } else {
      deferred_.push_back(
          {next_round, excess, next_round + config_.backoff_rounds});
      deferred_total_ += excess;
    }
  }
  return adm;
}

RoundMetrics Capped::step() {
  apply_control();
  begin_round_faults();
  const std::uint64_t generated = sample_arrivals();
  const Admission adm = admit_arrivals(generated);
  const std::uint64_t nu = pool_.total() + adm.admitted;
  {
    telemetry::ScopedPhaseTimer timer(timers_, telemetry::Phase::kThrow, nu);
    choice_scratch_.resize(nu);
    if (bin_sampler_ != nullptr) {
      bin_sampler_->fill(engine_, choice_scratch_);
    } else {
      rng::fill_bounded(engine_, choice_scratch_, config_.n);
    }
  }
  const RoundMetrics m = step_internal(adm, choice_scratch_);
  if (controller_ != nullptr) controller_->observe(m);
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    if (timeseries_ != nullptr) record_time_series(m);
  }
  return m;
}

void Capped::record_time_series(const RoundMetrics& m) {
  telemetry::TimeSeriesSample s;
  s.round = m.round;
  s.pool_size = m.pool_size;
  s.total_load = m.total_load;
  s.max_load = m.max_load;
  s.generated = m.generated;
  s.deleted = m.deleted;
  s.shed = m.shed;
  s.deferred = m.deferred;
  s.requeued = m.requeued;
  s.faulted_bins = m.faulted_bins;
  s.capacity = config_.capacity;
  s.wait_p50 = waits_.quantile_upper_bound(0.50);
  s.wait_p95 = waits_.quantile_upper_bound(0.95);
  s.wait_p99 = waits_.quantile_upper_bound(0.99);
  if (controller_ != nullptr) {
    // λ̂ as ×10⁶ fixed point: the EWMA is a pure function of the
    // byte-identical metrics stream, so the rounding is too.
    s.lambda_hat_micro = static_cast<std::uint64_t>(
        controller_->estimator().lambda_ewma() * 1e6 + 0.5);
    s.control_changes = controller_->changes_total();
  }
  timeseries_->observe(s);
}

void Capped::set_capacity(std::uint32_t capacity) {
  IBA_EXPECT(!infinite(), "Capped: set_capacity requires finite capacity");
  IBA_EXPECT(capacity >= 1 && capacity <= 0xFFFFu,
             "Capped: capacity must lie in [1, 65535]");
  if (capacity > bounded_->capacity()) {
    bounded_->grow_capacity(capacity);
  }
  // Shrink touches only the acceptance bound: overfull bins drain via
  // the regular deletions (see the header comment).
  config_.capacity = capacity;
}

void Capped::apply_control() {
  if (controller_ == nullptr) return;
  const auto decision =
      controller_->decide(round_ + 1, config_.capacity, config_.pool_limit);
  if (!decision) return;
  if (decision->capacity != config_.capacity) {
    set_capacity(decision->capacity);
  }
  if (decision->pool_limit != 0 &&
      decision->pool_limit != config_.pool_limit) {
    set_pool_limit(decision->pool_limit);
  }
}

RoundMetrics Capped::step_with_choices(
    std::span<const std::uint32_t> choices) {
  IBA_EXPECT(config_.arrival == ArrivalModel::kDeterministic,
             "Capped: step_with_choices requires deterministic arrivals");
  IBA_EXPECT(fault_plan_ == nullptr &&
                 config_.backpressure == BackpressureMode::kNone,
             "Capped: step_with_choices is incompatible with fault plans "
             "and backpressure");
  IBA_EXPECT(controller_ == nullptr,
             "Capped: step_with_choices is incompatible with adaptive "
             "control (couplings assume a fixed capacity)");
  IBA_EXPECT(choices.size() == balls_to_throw(),
             "Capped: need exactly one bin choice per thrown ball");
  Admission adm;
  adm.generated = config_.lambda_n;
  adm.admitted = config_.lambda_n;
  return step_internal(adm, choices);
}

RoundMetrics Capped::step_internal(const Admission& admission,
                                   std::span<const std::uint32_t> choices) {
  ++round_;
  pool_.add(round_, admission.admitted);
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    // Ball ids are the global generation sequence: this cohort occupies
    // ids generated_total_ .. generated_total_ + generated - 1. (With
    // backpressure the tracer is rejected at attach time, so admitted
    // always equals generated here when tracing.)
    if (tracer_ != nullptr) {
      tracer_->on_arrivals(round_, generated_total_, admission.generated);
    }
  }
  generated_total_ += admission.generated;
  return allocate_and_delete(admission, choices);
}

RoundMetrics Capped::allocate_and_delete(
    const Admission& admission, std::span<const std::uint32_t> choices) {
  RoundMetrics m;
  m.round = round_;
  m.generated = admission.generated;
  m.shed = admission.shed;
  m.thrown = pool_.total();
  if (faults_round_) m.faulted_bins = fault_plan_->faulted_bins();

  const bool tracing = [&] {
    if constexpr (IBA_TELEMETRY_ENABLED != 0) {
      return tracer_ != nullptr;
    } else {
      return false;
    }
  }();

  // Fast path: the fused bin-major kernel handles acceptance and deletion
  // in one chunked sweep (and computes the end-of-round load stats). The
  // kernel times itself internally, splitting the sweep between kAccept
  // and kDelete so phase attribution matches the unfused kernels.
  bool load_stats_done = false;
  bool fused = false;
  if (config_.kernel == RoundKernel::kBinMajor && config_.shards == 1 &&
      !tracing && !infinite() && choices.size() <= kMaxKernelThrows) {
    fused = round_fused(choices, m);
  }
  if (fused) {
    load_stats_done = true;
  } else {
    // Allocation. Pool buckets are considered in preference order (the
    // paper's oldest-first, or the ablation's inversion); each bin
    // accepts while it has room, which realizes "accept the preferred
    // min{c−ℓ, ν} requests" exactly (see the header comment). The scalar
    // path and the bin-major kernel compute the same outcome set —
    // acceptance is independent across bins — with different
    // memory-access order.
    {
      telemetry::ScopedPhaseTimer accept_timer(timers_,
                                               telemetry::Phase::kAccept,
                                               m.thrown);
      if (config_.kernel == RoundKernel::kBinMajor &&
          choices.size() <= kMaxKernelThrows) {
        accept_bin_major(choices, m);
      } else {
        accept_scalar(choices, m);
      }
      pool_.swap(survivors_);
    }

    // Deletion: every non-empty, non-failed bin serves one ball. The
    // unsharded bin-major pass also computes the end-of-round load stats
    // while the bin arrays are hot, saving the separate scans below.
    telemetry::ScopedPhaseTimer delete_timer(timers_,
                                             telemetry::Phase::kDelete);
    if (config_.kernel == RoundKernel::kBinMajor && config_.shards > 1) {
      delete_sharded(m);
    } else if (config_.kernel == RoundKernel::kBinMajor) {
      load_stats_done = delete_bin_major(m);
    } else {
      delete_scalar(m);
    }
    delete_timer.set_balls(m.deleted);
    delete_timer.stop();
  }
  deleted_total_ += m.deleted;
  if (!requeue_.empty()) merge_requeued_into_pool();
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    if (tracer_ != nullptr) tracer_->on_round_end(round_);
  }

  m.pool_size = pool_.total();
  m.deferred = deferred_total_;
  m.oldest_pool_age = pool_.oldest_age(round_);
  if (!load_stats_done) {
    if (infinite()) {
      m.total_load = unbounded_->total_load();
      m.max_load = unbounded_->max_load();
      m.empty_bins = unbounded_->empty_bins();
    } else {
      m.total_load = bounded_->total_load();
      m.max_load = bounded_->max_load();
      m.empty_bins = bounded_->empty_bins();
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Scalar (ball-at-a-time) round path — kept as the differential-testing
// reference for the bin-major kernel.
// ---------------------------------------------------------------------------

void Capped::accept_scalar(std::span<const std::uint32_t> choices,
                           RoundMetrics& m) {
  survivors_.clear();
  const auto trace_throw = [this](std::uint64_t label, std::uint32_t bin,
                                  std::uint64_t load, bool accepted) {
    if constexpr (IBA_TELEMETRY_ENABLED != 0) {
      if (tracer_ != nullptr) tracer_->on_throw(label, bin, load, accepted);
    } else {
      (void)this;
      (void)label;
      (void)bin;
      (void)load;
      (void)accepted;
    }
  };
  std::size_t idx = 0;
  if (infinite()) {
    for (const auto& bucket : pool_.buckets()) {
      for (std::uint64_t k = 0; k < bucket.count; ++k) {
        const std::uint32_t bin = choices[idx++];
        if constexpr (IBA_TELEMETRY_ENABLED != 0) {
          if (tracer_ != nullptr) {
            tracer_->on_throw(bucket.label, bin, unbounded_->load(bin), true);
          }
        }
        unbounded_->push(bin, bucket.label);
      }
    }
    m.accepted = m.thrown;
  } else if (config_.acceptance == AcceptanceOrder::kOldestFirst) {
    const std::uint32_t cap = config_.capacity;
    for (const auto& bucket : pool_.buckets()) {
      for (std::uint64_t k = 0; k < bucket.count; ++k) {
        const std::uint32_t bin = choices[idx++];
        const std::uint64_t load = bounded_->load(bin);
        const std::uint32_t cap_b = faults_round_ ? fault_caps_[bin] : cap;
        if (load < cap_b) {
          bounded_->push(bin, bucket.label);
          ++m.accepted;
          trace_throw(bucket.label, bin, load, true);
        } else {
          survivors_.add(bucket.label, 1);
          trace_throw(bucket.label, bin, load, false);
        }
      }
    }
  } else {
    // Youngest-first ablation: buckets visited in reverse. Survivors are
    // seen youngest-first, so they are staged and re-added oldest-first
    // to keep the pool's label order intact.
    const std::uint32_t cap = config_.capacity;
    const auto& buckets = pool_.buckets();
    reverse_survivor_scratch_.clear();
    for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
      std::uint64_t rejected = 0;
      for (std::uint64_t k = 0; k < it->count; ++k) {
        const std::uint32_t bin = choices[idx++];
        const std::uint64_t load = bounded_->load(bin);
        const std::uint32_t cap_b = faults_round_ ? fault_caps_[bin] : cap;
        if (load < cap_b) {
          bounded_->push(bin, it->label);
          ++m.accepted;
          trace_throw(it->label, bin, load, true);
        } else {
          ++rejected;
          trace_throw(it->label, bin, load, false);
        }
      }
      if (rejected > 0) {
        reverse_survivor_scratch_.push_back({it->label, rejected});
      }
    }
    for (auto it = reverse_survivor_scratch_.rbegin();
         it != reverse_survivor_scratch_.rend(); ++it) {
      survivors_.add(it->label, it->count);
    }
  }
  IBA_ASSERT(idx == choices.size());
}

void Capped::delete_scalar(RoundMetrics& m) {
  const bool failures = config_.failure_probability > 0.0;
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    const std::uint64_t load =
        infinite() ? unbounded_->load(bin) : bounded_->load(bin);
    if (load == 0) continue;
    // Injected faults are consulted before the stochastic failure coin:
    // a faulted bin draws no coin, in every kernel, so the engine's
    // draw sequence stays identical across kernels and shard counts.
    if (faults_round_ &&
        (fault_flags_[bin] & FaultFlags::kNoServe) != 0) {
      if ((fault_flags_[bin] & FaultFlags::kDrain) != 0) {
        // Crash with state loss: the buffer returns to the pool with
        // labels (ages) preserved, exactly like kCrashRequeue.
        while (bounded_->load(bin) > 0) {
          const std::uint64_t crashed = bounded_->pop_front(bin);
          if constexpr (IBA_TELEMETRY_ENABLED != 0) {
            if (tracer_ != nullptr) tracer_->on_requeue(bin, crashed);
          }
          ++requeue_[crashed];
          ++m.requeued;
        }
      }
      continue;  // down / straggling: no service this round
    }
    if (failures &&
        rng::uniform01(engine_) < config_.failure_probability) {
      if (config_.failure_mode == FailureMode::kCrashRequeue) {
        // The bin crashes: its buffered balls return to the pool with
        // their original labels (ages keep accruing).
        while (bounded_->load(bin) > 0) {
          const std::uint64_t crashed = bounded_->pop_front(bin);
          if constexpr (IBA_TELEMETRY_ENABLED != 0) {
            if (tracer_ != nullptr) tracer_->on_requeue(bin, crashed);
          }
          ++requeue_[crashed];
          ++m.requeued;
        }
      }
      continue;  // no service from this bin this round
    }
    delete_from_bin(bin, m);
  }
}

// ---------------------------------------------------------------------------
// Bin-major round kernel: counting-sort throws by destination bin with a
// stable prefix-sum scatter, then accept in one cache-linear pass over
// bins. Stability keeps each bin's candidate list in the scalar path's
// visit order, and acceptance is independent across bins, so each bin
// taking the first min{c−ℓ, ν_bin} candidates reproduces the scalar
// outcome exactly — queues, survivors, metrics and traces are
// byte-identical. With shards > 1 the per-bin work runs on contiguous bin
// ranges over a thread pool; all randomness stays on the master engine.
// ---------------------------------------------------------------------------

// Flattens pool buckets in acceptance-visit order: bucket_ends_[b] is
// one past the last throw index of bucket b, so a monotone cursor maps
// throw index → bucket during the scatter scans. The infinite-capacity
// scalar branch visits buckets forward regardless of the acceptance
// order (everything is accepted); mirror that.
void Capped::flatten_pool_buckets(std::uint64_t expected_total) {
  const bool forward =
      infinite() || config_.acceptance == AcceptanceOrder::kOldestFirst;
  const auto& buckets = pool_.buckets();
  bucket_labels_.clear();
  bucket_ends_.clear();
  std::uint64_t cum = 0;
  if (forward) {
    for (const auto& bucket : buckets) {
      bucket_labels_.push_back(bucket.label);
      cum += bucket.count;
      bucket_ends_.push_back(cum);
    }
  } else {
    for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
      bucket_labels_.push_back(it->label);
      cum += it->count;
      bucket_ends_.push_back(cum);
    }
  }
  IBA_ASSERT(cum == expected_total);
  (void)expected_total;
}

void Capped::accept_bin_major(std::span<const std::uint32_t> choices,
                              RoundMetrics& m) {
  const std::uint32_t n = config_.n;
  const std::size_t nu = choices.size();
  const std::uint32_t shards = config_.shards;
  const bool forward =
      infinite() || config_.acceptance == AcceptanceOrder::kOldestFirst;

  flatten_pool_buckets(nu);
  const std::size_t n_buckets = bucket_labels_.size();

  const bool tracing = [&] {
    if constexpr (IBA_TELEMETRY_ENABLED != 0) {
      return tracer_ != nullptr;
    } else {
      return false;
    }
  }();

  counts_.resize(n);
  starts_.resize(static_cast<std::size_t>(n) + 1);

  if (tracing) {
    // Loads before any acceptance, for replaying per-throw trace events.
    init_load_.resize(n);
    for (std::uint32_t bin = 0; bin < n; ++bin) {
      init_load_[bin] = infinite() ? unbounded_->load(bin)
                                   : bounded_->load(bin);
    }
    rank_scratch_.resize(nu);
  } else {
    rank_scratch_.clear();
  }

  cand_bucket_.resize(nu);
  rejected_.assign(static_cast<std::size_t>(shards) * n_buckets, 0);
  shard_accepted_.assign(shards, 0);
  shard_load_delta_.assign(shards, 0);
  if (shards == 1) {
    // Serial counting sort: count, exclusive prefix (counts_ becomes the
    // scatter cursor array), then the fused scatter + accept pass.
    std::fill(counts_.begin(), counts_.end(), 0u);
    for (std::size_t i = 0; i < nu; ++i) ++counts_[choices[i]];
    starts_[0] = 0;
    for (std::uint32_t bin = 0; bin < n; ++bin) {
      starts_[bin + 1] = starts_[bin] + counts_[bin];
      counts_[bin] = starts_[bin];
    }
    scatter_and_accept_range(choices, 0, 0, n);
  } else {
    // Parallel partition (every shard scans only its slice of the
    // throws), then per-range acceptance over the identical arrays.
    partition_choices_parallel(choices, tracing);
    run_sharded([&](std::size_t shard, std::size_t lo, std::size_t hi) {
      accept_range(shard, static_cast<std::uint32_t>(lo),
                   static_cast<std::uint32_t>(hi));
    });
  }

  // Commit shard totals sequentially.
  std::int64_t load_delta = 0;
  std::uint64_t accepted = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    load_delta += shard_load_delta_[s];
    accepted += shard_accepted_[s];
  }
  if (infinite()) {
    unbounded_->adjust_total_load(load_delta);
  } else {
    bounded_->adjust_total_load(load_delta);
  }
  m.accepted = accepted;

  // Survivors: per-bucket rejection counts, merged across shards and
  // re-added oldest-first (AgedPool's label-order invariant).
  survivors_.clear();
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const std::size_t b = forward ? i : n_buckets - 1 - i;
    std::uint64_t rejected = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      rejected += rejected_[static_cast<std::size_t>(s) * n_buckets + b];
    }
    survivors_.add(bucket_labels_[b], rejected);
  }

  if (tracing) emit_throw_traces(choices);
}

void Capped::scatter_and_accept_range(std::span<const std::uint32_t> choices,
                                      std::size_t shard,
                                      std::uint32_t bin_begin,
                                      std::uint32_t bin_end) {
  const std::size_t nu = choices.size();
  const bool tracing = !rank_scratch_.empty();

  // Stable scatter of the candidates targeting [bin_begin, bin_end):
  // scanning throws in visit order and appending at each bin's cursor
  // preserves, per bin, exactly the scalar path's candidate order.
  std::size_t bucket = 0;
  for (std::size_t idx = 0; idx < nu; ++idx) {
    while (idx >= bucket_ends_[bucket]) ++bucket;
    const std::uint32_t bin = choices[idx];
    if (bin < bin_begin || bin >= bin_end) continue;
    const std::uint32_t pos = counts_[bin]++;
    cand_bucket_[pos] = static_cast<std::uint32_t>(bucket);
    if (tracing) rank_scratch_[idx] = pos - starts_[bin];
  }

  accept_range(shard, bin_begin, bin_end);
}

void Capped::accept_range(std::size_t shard, std::uint32_t bin_begin,
                          std::uint32_t bin_end) {
  // Cache-linear acceptance: each bin takes the first min{c−ℓ, ν_bin}
  // candidates of its segment; the rest count as per-bucket rejections.
  std::uint64_t accepted = 0;
  std::uint64_t* rejected = rejected_.data() + shard * bucket_labels_.size();
  if (infinite()) {
    for (std::uint32_t bin = bin_begin; bin < bin_end; ++bin) {
      const std::uint32_t seg_begin = starts_[bin];
      const std::uint32_t seg_end = starts_[bin + 1];
      if (seg_begin == seg_end) continue;
      unbounded_->push_bulk(bin, seg_end - seg_begin, [&](std::uint64_t k) {
        return bucket_labels_[cand_bucket_[seg_begin + k]];
      });
      accepted += seg_end - seg_begin;
    }
  } else {
    const std::uint32_t cap = config_.capacity;
    const std::uint32_t* packed = bounded_->packed();
    for (std::uint32_t bin = bin_begin; bin < bin_end; ++bin) {
      const std::uint32_t seg_begin = starts_[bin];
      const std::uint32_t seg_end = starts_[bin + 1];
      if (seg_begin == seg_end) continue;
      const std::uint32_t count = seg_end - seg_begin;
      const std::uint32_t size = packed[bin] & queueing::BinTable::kSizeMask;
      // A degraded bin's effective capacity can sit below its current
      // load (balls accepted before the degradation stay put), so the
      // subtraction must saturate.
      const std::uint32_t cap_b = faults_round_ ? fault_caps_[bin] : cap;
      const std::uint32_t free = size < cap_b ? cap_b - size : 0;
      const std::uint32_t take = count < free ? count : free;
      if (take > 0) {
        bounded_->push_bulk(bin, take, [&](std::uint32_t k) {
          return bucket_labels_[cand_bucket_[seg_begin + k]];
        });
      }
      for (std::uint32_t k = take; k < count; ++k) {
        ++rejected[cand_bucket_[seg_begin + k]];
      }
      accepted += take;
    }
  }
  shard_accepted_[shard] = accepted;
  shard_load_delta_[shard] = static_cast<std::int64_t>(accepted);
}

// Parallel counting sort across shards, replacing the old scheme where
// every shard re-scanned all ν throws twice (count + scatter) to pick
// out its own bins — serial work in disguise. Here each shard scans only
// its 1/S slice of the throws:
//
//   1. count its slice's throws per destination bin *range* (S² counters
//      total — micro);
//   2. barrier + serial S² prefix over those counters: every (slice,
//      range) pair gets a disjoint cursor into a staging array laid out
//      range-major, slices in order within a range;
//   3. scatter its slice into the staging array as (bin << 32 | bucket)
//      records. Within a range's staging segment, records are ordered by
//      (slice, throw index) = global throw order — the scatter is stable;
//   4. barrier; then each shard owns its range's contiguous staging
//      segment and runs a private counting sort over it into the global
//      counts_/starts_/cand_bucket_ arrays, offset by the segment start.
//
// The arrays produced are byte-identical to the serial partition (proof:
// starts_[bin] = #throws to lower bins globally, since ranges are bin-
// ordered and segments are throw-ordered), so the acceptance pass — and
// every downstream byte — cannot tell which partition built them.
void Capped::partition_choices_parallel(
    std::span<const std::uint32_t> choices, bool tracing) {
  const std::uint32_t n = config_.n;
  const std::uint32_t shards = config_.shards;
  const std::size_t nu = choices.size();
  const std::size_t s_sq = static_cast<std::size_t>(shards) * shards;

  // Inverse of parallel_for_ranges' partition: bin → its range index.
  // The first `rem` ranges have base+1 bins, the rest have base (when
  // shards > n, base is 0 and every existing bin sits alone in range
  // `bin`, dividing by base+1 — never by zero).
  const std::size_t base = static_cast<std::size_t>(n) / shards;
  const std::size_t rem = static_cast<std::size_t>(n) % shards;
  const std::size_t wide_end = rem * (base + 1);
  const auto range_of = [base, rem, wide_end](std::uint32_t bin) noexcept {
    return bin < wide_end
               ? static_cast<std::size_t>(bin) / (base + 1)
               : rem + (static_cast<std::size_t>(bin) - wide_end) / base;
  };

  // Phase 1: per-(slice, range) counts.
  range_count_.assign(s_sq, 0);
  run_sharded_items(nu, [&](std::size_t slice, std::size_t lo,
                            std::size_t hi) {
    std::uint64_t* slice_counts = range_count_.data() + slice * shards;
    for (std::size_t i = lo; i < hi; ++i) {
      ++slice_counts[range_of(choices[i])];
    }
  });

  // Phase 2: serial S² prefix — staging cursors and segment bounds.
  range_cursor_.resize(s_sq);
  range_base_.assign(static_cast<std::size_t>(shards) + 1, 0);
  std::uint64_t acc = 0;
  for (std::uint32_t r = 0; r < shards; ++r) {
    range_base_[r] = acc;
    for (std::uint32_t s = 0; s < shards; ++s) {
      range_cursor_[static_cast<std::size_t>(s) * shards + r] = acc;
      acc += range_count_[static_cast<std::size_t>(s) * shards + r];
    }
  }
  range_base_[shards] = acc;
  IBA_ASSERT(acc == nu);

  // Phase 3: stage each slice's throws per destination range.
  staged_.resize(nu);
  if (tracing) staged_idx_.resize(nu);
  run_sharded_items(nu, [&](std::size_t slice, std::size_t lo,
                            std::size_t hi) {
    std::uint64_t* cursor = range_cursor_.data() + slice * shards;
    // Bucket of the slice's first throw; then a monotone cursor, exactly
    // the serial scan's bucket walk.
    std::size_t bucket = static_cast<std::size_t>(
        std::upper_bound(bucket_ends_.begin(), bucket_ends_.end(), lo) -
        bucket_ends_.begin());
    for (std::size_t idx = lo; idx < hi; ++idx) {
      while (idx >= bucket_ends_[bucket]) ++bucket;
      const std::uint32_t bin = choices[idx];
      const std::uint64_t pos = cursor[range_of(bin)]++;
      staged_[pos] = (static_cast<std::uint64_t>(bin) << 32) |
                     static_cast<std::uint64_t>(bucket);
      if (tracing) staged_idx_[pos] = static_cast<std::uint32_t>(idx);
    }
  });

  // Phase 4: per-range private counting sort into the global arrays.
  run_sharded([&](std::size_t r, std::size_t lo, std::size_t hi) {
    std::uint32_t* const counts = counts_.data();
    std::uint32_t* const starts = starts_.data();
    std::fill(counts + lo, counts + hi, 0u);
    const std::uint64_t seg_lo = range_base_[r];
    const std::uint64_t seg_hi = range_base_[r + 1];
    for (std::uint64_t p = seg_lo; p < seg_hi; ++p) {
      ++counts[staged_[p] >> 32];
    }
    std::uint32_t running = static_cast<std::uint32_t>(seg_lo);
    for (std::size_t bin = lo; bin < hi; ++bin) {
      starts[bin] = running;
      running += counts[bin];
      counts[bin] = starts[bin];
    }
    for (std::uint64_t p = seg_lo; p < seg_hi; ++p) {
      const std::uint64_t record = staged_[p];
      const std::uint32_t bin = static_cast<std::uint32_t>(record >> 32);
      const std::uint32_t pos = counts[bin]++;
      cand_bucket_[pos] = static_cast<std::uint32_t>(record);
      if (tracing) rank_scratch_[staged_idx_[p]] = pos - starts[bin];
    }
  });
  starts_[n] = static_cast<std::uint32_t>(nu);
}

// Fused round kernel for the common configuration: finite capacity, one
// shard, no ball tracer. A flat counting sort over n = 10^6 bins
// random-accesses multi-megabyte cursor arrays and loses to the scalar
// loop on cache misses, so the kernel works in two cache-resident levels
// instead:
//
//   Pass A partitions throws into contiguous 4096-bin chunks. The scan
//   runs bucket-by-bucket (pool buckets are contiguous index ranges in
//   visit order), appending each throw's 12-bit local bin offset to its
//   chunk's stream and closing every bucket with one sentinel per chunk.
//   Each chunk stream is therefore in (bucket, throw-index) order — the
//   scalar visit order — and the bucket of an entry is implied by its
//   sentinel-delimited segment instead of being stored per throw.
//
//   Pass B walks chunks in ascending bin order. It first replays
//   acceptance: each candidate is accepted iff its bin has room at its
//   turn, exactly the scalar rule, with the chunk's bin state (sizes,
//   heads, labels) L1/L2-resident. It then runs the delete walk over the
//   same chunk's bins while they are still hot, drawing failure coins and
//   uniform positions in ascending bin order — the scalar engine
//   sequence — and recording waits inline (the integer wait accumulator
//   is order-independent, so mid-sweep recording equals the scalar
//   path's end-of-round stream bit for bit).
//
// Outcome, RNG consumption and metrics are byte-identical to the scalar
// path; only the memory access order differs.
bool Capped::round_fused(std::span<const std::uint32_t> choices,
                         RoundMetrics& m) {
  const std::uint32_t n = config_.n;
  const std::size_t nu = choices.size();
  flatten_pool_buckets(nu);
  const std::size_t n_buckets = bucket_labels_.size();

  constexpr std::uint32_t kChunkBits = 13;  // 8192 bins per chunk
  const std::uint32_t chunk_width = 1u << kChunkBits;
  const std::uint32_t n_chunks = (n + chunk_width - 1) >> kChunkBits;
  constexpr std::uint16_t kSentinel = 0xFFFF;

  // One sentinel per (bucket, chunk): bail to the flat path if the pool's
  // age spread would make that overhead comparable to the throws
  // themselves (does not happen in steady state).
  const std::size_t sentinels =
      n_buckets * static_cast<std::size_t>(n_chunks);
  if (sentinels > nu / 2 + 1024) return false;

  // The sweep interleaves acceptance and deletion per chunk, so phase
  // attribution is done here: delete-walk time is accumulated per chunk
  // and subtracted from the sweep total, giving consistent kAccept /
  // kDelete booking across all kernels. No clock reads without a sink.
  const bool timing = timers_ != nullptr;
  std::uint64_t delete_ns = 0;
  std::chrono::steady_clock::time_point t_sweep;
  if (timing) t_sweep = std::chrono::steady_clock::now();

  // Pass A: per-chunk counts, prefix, then the bucket-major partition.
  chunk_counts_.assign(n_chunks, 0);
  for (std::size_t i = 0; i < nu; ++i) {
    ++chunk_counts_[choices[i] >> kChunkBits];
  }
  chunk_cursor_.resize(n_chunks);
  std::uint32_t run = 0;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    chunk_cursor_[c] = run;
    run += chunk_counts_[c] + static_cast<std::uint32_t>(n_buckets);
  }
  // The kPrefetchDist slack keeps the replay loop's look-ahead read in
  // bounds; stale values there are harmless (the prefetched address is
  // masked into the chunk and never dereferenced architecturally).
  constexpr std::size_t kPrefetchDist = 24;
  part16_.resize(nu + sentinels + kPrefetchDist);
  {
    std::size_t idx = 0;
    for (std::size_t b = 0; b < n_buckets; ++b) {
      const std::uint64_t b_end = bucket_ends_[b];
      for (; idx < b_end; ++idx) {
        const std::uint32_t bin = choices[idx];
        part16_[chunk_cursor_[bin >> kChunkBits]++] =
            static_cast<std::uint16_t>(bin & (chunk_width - 1));
      }
      for (std::uint32_t c = 0; c < n_chunks; ++c) {
        part16_[chunk_cursor_[c]++] = kSentinel;
      }
    }
    IBA_ASSERT(idx == nu);
  }

  // Pass B: replay acceptance, then delete, chunk by chunk, on raw
  // views of the bin arrays. total_load_ is committed once at the end of
  // the sweep: the per-push/pop read-modify-write of one shared counter
  // is a store-to-load-forwarding chain that throttles both loops.
  rejected_.assign(n_buckets, 0);
  // Acceptance bounds by the logical capacity; slot arithmetic uses the
  // storage capacity, which can be wider after a controller shrink (the
  // storage never narrows — spare slots are simply unused).
  const std::uint32_t cap = config_.capacity;
  const std::uint32_t storage = bounded_->capacity();
  const bool faults = faults_round_;
  const bool failures = config_.failure_probability > 0.0;
  const double p_fail = config_.failure_probability;
  const bool crash = config_.failure_mode == FailureMode::kCrashRequeue;
  const DeletionDiscipline discipline = config_.deletion;
  std::uint32_t* const hs_arr = bounded_->packed_mut();
  std::uint64_t* const lb = bounded_->labels_mut();
  constexpr std::uint32_t kSizeMask = queueing::BinTable::kSizeMask;
  constexpr std::uint32_t kHeadShift = queueing::BinTable::kHeadShift;
  std::uint64_t accepted = 0;
  std::uint64_t max_load = 0;
  std::uint64_t empty_bins = 0;
  std::uint64_t wait_count = 0;
  std::uint64_t wait_sum = 0;
  std::uint64_t wait_max = 0;
  std::uint64_t requeued_balls = 0;
  std::size_t p = 0;  // chunk streams are contiguous in part16_
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    const std::uint32_t bin_lo = c << kChunkBits;
    const std::uint32_t bin_hi = std::min(n, bin_lo + chunk_width);
    const std::size_t chunk_end = chunk_cursor_[c];

    // Acceptance replay in visit order. The replay touches bin state in
    // random order, but only within this chunk's cache-resident slice of
    // the cursor and label arrays, so the loads hit L1/L2 instead of
    // paying a full random-access miss per candidate.
    std::size_t b = 0;
    std::uint64_t label = n_buckets > 0 ? bucket_labels_[0] : 0;
    std::uint64_t rej = 0;
    for (; p < chunk_end; ++p) {
      const std::uint32_t v = part16_[p];
      // Software prefetch kPrefetchDist entries ahead: the replay's only
      // cold loads are the cursor word and label line of the upcoming
      // bins. Sentinels and the tail slack read garbage offsets — the
      // mask and clamp keep the hinted address inside the arrays, and a
      // useless hint costs nothing measurable.
      {
        const std::uint32_t ahead =
            part16_[p + kPrefetchDist] & (chunk_width - 1);
        const std::uint32_t pf_bin = std::min(n - 1, bin_lo + ahead);
        prefetch_rw(hs_arr + pf_bin);
        prefetch_rw(lb + static_cast<std::size_t>(pf_bin) * storage);
      }
      if (v == kSentinel) [[unlikely]] {
        // Bucket b has no further throws in this chunk.
        rejected_[b] += rej;
        rej = 0;
        ++b;
        if (b < n_buckets) label = bucket_labels_[b];
        continue;
      }
      const std::uint32_t bin = bin_lo + v;
      const std::uint32_t hs = hs_arr[bin];
      const std::uint32_t load = hs & kSizeMask;
      // Acceptance is bounded by the round's effective capacity; slot
      // arithmetic still uses the storage capacity `cap`.
      const std::uint32_t cap_b = faults ? fault_caps_[bin] : cap;
      if (load < cap_b) {
        std::uint32_t slot = (hs >> kHeadShift) + load;
        if (slot >= storage) slot -= storage;
        lb[static_cast<std::size_t>(bin) * storage + slot] = label;
        hs_arr[bin] = hs + 1;
        ++accepted;
      } else {
        ++rej;
      }
    }
    IBA_ASSERT(b == n_buckets && rej == 0);

    std::chrono::steady_clock::time_point t_del;
    if (timing) t_del = std::chrono::steady_clock::now();

    // Delete walk over this chunk's bins while their state is hot.
    // Waits are recorded inline: the integer wait accumulator is
    // order-independent, so mid-sweep recording matches the scalar
    // path's end-of-round stream bit for bit.
    if (!failures && !faults && discipline != DeletionDiscipline::kUniform) {
      // Failure-free FIFO/LIFO: no engine draws, lean raw-array loop.
      const bool lifo = discipline == DeletionDiscipline::kLifo;
      for (std::uint32_t bin = bin_lo; bin < bin_hi; ++bin) {
        const std::uint32_t hs = hs_arr[bin];
        const std::uint32_t load = hs & kSizeMask;
        if (load == 0) {
          ++empty_bins;
          continue;
        }
        const std::size_t base = static_cast<std::size_t>(bin) * storage;
        const std::uint32_t head = hs >> kHeadShift;
        std::uint64_t served;
        if (lifo) {
          std::uint32_t slot = head + load - 1;
          if (slot >= storage) slot -= storage;
          served = lb[base + slot];
          hs_arr[bin] = hs - 1;  // head unchanged, size - 1
        } else {
          served = lb[base + head];
          const std::uint32_t next = head + 1 == storage ? 0 : head + 1;
          hs_arr[bin] = (next << kHeadShift) | (load - 1);
        }
        const std::uint64_t wait = round_ - served;
        waits_.record(wait);
        ++wait_count;
        wait_sum += wait;
        if (wait > wait_max) wait_max = wait;
        empty_bins += static_cast<std::uint64_t>(load == 1);
        if (load - 1 > max_load) max_load = load - 1;
      }
    } else {
      // Failures and/or uniform service: per-bin coin/position draws in
      // bin order, exactly the scalar path's engine consumption.
      for (std::uint32_t bin = bin_lo; bin < bin_hi; ++bin) {
        const std::uint32_t load = hs_arr[bin] & kSizeMask;
        if (load == 0) {
          ++empty_bins;
          continue;
        }
        if (faults && (fault_flags_[bin] & FaultFlags::kNoServe) != 0) {
          if ((fault_flags_[bin] & FaultFlags::kDrain) != 0) {
            bounded_->drain_bulk(bin, [&](std::uint64_t crashed) {
              ++requeue_[crashed];
              ++m.requeued;
            });
            requeued_balls += load;
            ++empty_bins;
          } else if (load > max_load) {
            max_load = load;
          }
          continue;  // faulted bins draw no failure coin (see above)
        }
        if (failures && rng::uniform01(engine_) < p_fail) {
          if (crash) {
            bounded_->drain_bulk(bin, [&](std::uint64_t crashed) {
              ++requeue_[crashed];
              ++m.requeued;
            });
            requeued_balls += load;
            ++empty_bins;
          } else if (load > max_load) {
            max_load = load;
          }
          continue;
        }
        std::uint64_t served;
        switch (discipline) {
          case DeletionDiscipline::kLifo:
            served = bounded_->remove_at(bin, load - 1);
            break;
          case DeletionDiscipline::kUniform:
            served = bounded_->remove_at(bin, rng::bounded32(engine_, load));
            break;
          case DeletionDiscipline::kFifo:
          default:
            served = bounded_->remove_at(bin, 0);
            break;
        }
        const std::uint64_t wait = round_ - served;
        waits_.record(wait);
        ++wait_count;
        wait_sum += wait;
        if (wait > wait_max) wait_max = wait;
        empty_bins += static_cast<std::uint64_t>(load == 1);
        if (load - 1 > max_load) max_load = load - 1;
      }
    }
    if (timing) {
      delete_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t_del)
              .count());
    }
  }

  m.accepted = accepted;
  m.deleted = wait_count;
  m.wait_count = wait_count;
  // Per-round wait sums are far below 2^53, so the double equals the
  // scalar path's per-ball accumulation exactly.
  m.wait_sum = static_cast<double>(wait_sum);
  m.wait_max = wait_max;
  bounded_->adjust_total_load(static_cast<std::int64_t>(accepted) -
                              static_cast<std::int64_t>(wait_count) -
                              static_cast<std::int64_t>(requeued_balls));
  m.total_load = bounded_->total_load();
  m.max_load = max_load;
  m.empty_bins = static_cast<std::uint32_t>(empty_bins);

  // Survivors re-added oldest-first (AgedPool's label-order invariant).
  const bool forward = config_.acceptance == AcceptanceOrder::kOldestFirst;
  survivors_.clear();
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const std::size_t bb = forward ? i : n_buckets - 1 - i;
    survivors_.add(bucket_labels_[bb], rejected_[bb]);
  }
  pool_.swap(survivors_);

  if (timing) {
    const auto total_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t_sweep)
            .count());
    const std::uint64_t accept_ns =
        total_ns > delete_ns ? total_ns - delete_ns : 0;
    timers_->add(telemetry::Phase::kAccept, accept_ns, m.thrown);
    timers_->add(telemetry::Phase::kDelete, delete_ns, m.deleted);
  }
  return true;
}

void Capped::emit_throw_traces(std::span<const std::uint32_t> choices) {
#if IBA_TELEMETRY_ENABLED
  // Replays the scalar path's on_throw stream: throws in visit order,
  // each with the load the bin had at that ball's decision point —
  // derivable from the initial load and the ball's stable rank among the
  // bin's candidates.
  const bool finite = !infinite();
  const std::uint64_t cap = finite ? config_.capacity : 0;
  std::size_t bucket = 0;
  for (std::size_t idx = 0; idx < choices.size(); ++idx) {
    while (idx >= bucket_ends_[bucket]) ++bucket;
    const std::uint32_t bin = choices[idx];
    const std::uint64_t label = bucket_labels_[bucket];
    const std::uint64_t rank = rank_scratch_[idx];
    const std::uint64_t initial = init_load_[bin];
    // Written without subtraction: a controller shrink can leave
    // initial > cap (still-draining bin), where cap - initial underflows.
    if (!finite || initial + rank < cap) {
      tracer_->on_throw(label, bin, initial + rank, true);
    } else {
      tracer_->on_throw(label, bin, cap, false);
    }
  }
#else
  (void)choices;
#endif
}

// Sharded end-of-round service. Failure coins and uniform-deletion
// positions are pre-sampled in bin order from the master engine — the
// exact draw sequence of the scalar loop — so the RNG stream, and hence
// every future round, is invariant in the shard count. Workers then pop
// over disjoint bin ranges, and a sequential bin-order pass records
// waits/requeues so even floating-point accumulation order matches.
void Capped::delete_sharded(RoundMetrics& m) {
  const std::uint32_t n = config_.n;
  const std::uint32_t shards = config_.shards;
  const bool failures = config_.failure_probability > 0.0;

  delete_action_.assign(n, kActionNone);
  delete_pos_.resize(n);
  deleted_label_.resize(n);
  for (std::uint32_t bin = 0; bin < n; ++bin) {
    const std::uint64_t load =
        infinite() ? unbounded_->load(bin) : bounded_->load(bin);
    if (load == 0) continue;
    if (faults_round_ &&
        (fault_flags_[bin] & FaultFlags::kNoServe) != 0) {
      // Faulted bins draw no failure coin (see delete_scalar); a
      // state-loss crash reuses the kActionCrash drain machinery.
      if ((fault_flags_[bin] & FaultFlags::kDrain) != 0) {
        delete_action_[bin] = kActionCrash;
      }
      continue;
    }
    if (failures &&
        rng::uniform01(engine_) < config_.failure_probability) {
      if (config_.failure_mode == FailureMode::kCrashRequeue) {
        delete_action_[bin] = kActionCrash;
      }
      continue;
    }
    delete_action_[bin] = kActionServe;
    std::uint32_t pos = 0;
    if (!infinite()) {
      switch (config_.deletion) {
        case DeletionDiscipline::kFifo:
          break;
        case DeletionDiscipline::kLifo:
          pos = static_cast<std::uint32_t>(load - 1);
          break;
        case DeletionDiscipline::kUniform:
          pos = rng::bounded32(engine_,
                               static_cast<std::uint32_t>(load));
          break;
      }
    }
    delete_pos_[bin] = pos;
  }

  shard_crashed_.resize(shards);
  for (auto& crashed : shard_crashed_) crashed.clear();
  shard_load_delta_.assign(shards, 0);
  run_sharded([&](std::size_t shard, std::size_t lo, std::size_t hi) {
    std::int64_t delta = 0;
    auto& crashed = shard_crashed_[shard];
    for (std::uint32_t bin = static_cast<std::uint32_t>(lo);
         bin < static_cast<std::uint32_t>(hi); ++bin) {
      switch (delete_action_[bin]) {
        case kActionServe:
          deleted_label_[bin] =
              infinite() ? unbounded_->remove_front(bin)
                         : bounded_->remove_at(bin, delete_pos_[bin]);
          --delta;
          break;
        case kActionCrash:
          bounded_->drain_bulk(bin, [&](std::uint64_t label) {
            crashed.emplace_back(bin, label);
            --delta;
          });
          break;
        default:
          break;
      }
    }
    shard_load_delta_[shard] = delta;
  });
  std::int64_t load_delta = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    load_delta += shard_load_delta_[s];
  }
  if (infinite()) {
    unbounded_->adjust_total_load(load_delta);
  } else {
    bounded_->adjust_total_load(load_delta);
  }

  // Sequential bin-order record pass. Shard crash lists concatenate in
  // ascending bin order (contiguous ranges), so one cursor merges them
  // back into the scalar loop's interleaving of deletes and requeues.
  std::size_t crash_shard = 0;
  std::size_t crash_item = 0;
  const auto skip_exhausted = [&] {
    while (crash_shard < shards &&
           crash_item >= shard_crashed_[crash_shard].size()) {
      ++crash_shard;
      crash_item = 0;
    }
  };
  for (std::uint32_t bin = 0; bin < n; ++bin) {
    if (delete_action_[bin] == kActionServe) {
      record_wait(bin, deleted_label_[bin], delete_pos_[bin], m);
    } else if (delete_action_[bin] == kActionCrash) {
      skip_exhausted();
      while (crash_shard < shards) {
        const auto& list = shard_crashed_[crash_shard];
        if (crash_item >= list.size() || list[crash_item].first != bin) break;
        const std::uint64_t label = list[crash_item].second;
        if constexpr (IBA_TELEMETRY_ENABLED != 0) {
          if (tracer_ != nullptr) tracer_->on_requeue(bin, label);
        }
        ++requeue_[label];
        ++m.requeued;
        ++crash_item;
        skip_exhausted();
      }
    }
  }
}

// Unsharded bin-major deletion: one fused pass that serves bins, draws
// failure coins and uniform positions in the scalar loop's exact bin
// order, and computes the end-of-round total/max/empty load statistics
// while each bin's arrays are still in cache. Outcome-, RNG- and
// trace-identical to delete_scalar; total_load is committed once at the
// end instead of per pop.
bool Capped::delete_bin_major(RoundMetrics& m) {
  const std::uint32_t n = config_.n;
  const bool failures = config_.failure_probability > 0.0;
  const double p_fail = config_.failure_probability;
  std::uint64_t max_load = 0;
  std::uint64_t empty_bins = 0;
  std::int64_t delta = 0;
  if (infinite()) {
    for (std::uint32_t bin = 0; bin < n; ++bin) {
      const std::uint64_t load = unbounded_->load(bin);
      if (load == 0) {
        ++empty_bins;
        continue;
      }
      if (failures && rng::uniform01(engine_) < p_fail) {
        // Crash-requeue is rejected for infinite capacity at config time,
        // so a failed bin simply skips service.
        if (load > max_load) max_load = load;
        continue;
      }
      const std::uint64_t label = unbounded_->remove_front(bin);
      --delta;
      record_wait(bin, label, 0, m);
      if (load == 1) {
        ++empty_bins;
      } else if (load - 1 > max_load) {
        max_load = load - 1;
      }
    }
    unbounded_->adjust_total_load(delta);
    m.total_load = unbounded_->total_load();
  } else {
    const bool crash = config_.failure_mode == FailureMode::kCrashRequeue;
    const DeletionDiscipline discipline = config_.deletion;
    for (std::uint32_t bin = 0; bin < n; ++bin) {
      const std::uint32_t load = bounded_->load(bin);
      if (load == 0) {
        ++empty_bins;
        continue;
      }
      if (faults_round_ &&
          (fault_flags_[bin] & FaultFlags::kNoServe) != 0) {
        if ((fault_flags_[bin] & FaultFlags::kDrain) != 0) {
          bounded_->drain_bulk(bin, [&](std::uint64_t label) {
            if constexpr (IBA_TELEMETRY_ENABLED != 0) {
              if (tracer_ != nullptr) tracer_->on_requeue(bin, label);
            }
            ++requeue_[label];
            ++m.requeued;
            --delta;
          });
          ++empty_bins;
        } else if (load > max_load) {
          max_load = load;
        }
        continue;  // faulted bins draw no failure coin (see delete_scalar)
      }
      if (failures && rng::uniform01(engine_) < p_fail) {
        if (crash) {
          bounded_->drain_bulk(bin, [&](std::uint64_t label) {
            if constexpr (IBA_TELEMETRY_ENABLED != 0) {
              if (tracer_ != nullptr) tracer_->on_requeue(bin, label);
            }
            ++requeue_[label];
            ++m.requeued;
            --delta;
          });
          ++empty_bins;
        } else if (load > max_load) {
          max_load = load;
        }
        continue;
      }
      std::uint32_t pos = 0;
      switch (discipline) {
        case DeletionDiscipline::kFifo:
          break;
        case DeletionDiscipline::kLifo:
          pos = load - 1;
          break;
        case DeletionDiscipline::kUniform:
          pos = rng::bounded32(engine_, load);
          break;
      }
      const std::uint64_t label = bounded_->remove_at(bin, pos);
      --delta;
      record_wait(bin, label, pos, m);
      if (load == 1) {
        ++empty_bins;
      } else if (load - 1 > max_load) {
        max_load = load - 1;
      }
    }
    bounded_->adjust_total_load(delta);
    m.total_load = bounded_->total_load();
  }
  m.max_load = max_load;
  m.empty_bins = empty_bins;
  return true;
}

void Capped::record_wait(std::uint32_t bin, std::uint64_t label,
                         std::uint64_t position, RoundMetrics& m) {
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    if (tracer_ != nullptr) tracer_->on_delete(bin, label, position);
  } else {
    (void)bin;
    (void)position;
  }
  const std::uint64_t wait = round_ - label;
  waits_.record(wait);
  ++m.deleted;
  ++m.wait_count;
  m.wait_sum += static_cast<double>(wait);
  if (wait > m.wait_max) m.wait_max = wait;
}

void Capped::ensure_shard_pool() {
  if (shard_pool_ != nullptr) return;
  shard_pool_ = std::make_unique<concurrency::ThreadPool>(
      config_.shards, config_.pin_threads);
  if (config_.pin_threads &&
      shard_pool_->pinned_count() < shard_pool_->thread_count()) {
    // Pinning is a placement hint, never a correctness knob: warn and run.
    telemetry::log_warn(
        "pin_threads_unavailable",
        {{"requested", shard_pool_->thread_count()},
         {"pinned", shard_pool_->pinned_count()}});
  }
}

void Capped::run_sharded(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  ensure_shard_pool();
  concurrency::parallel_for_ranges(*shard_pool_, config_.n, config_.shards,
                                   fn);
}

void Capped::run_sharded_items(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  ensure_shard_pool();
  concurrency::parallel_for_ranges(*shard_pool_, count, config_.shards, fn);
}

void Capped::first_touch_state() {
  if (infinite() || arena_ == nullptr) return;
  const std::uint32_t n = config_.n;
  // Pre-size the per-bin arrays so their pages exist to be touched.
  counts_.resize(n);
  starts_.resize(static_cast<std::size_t>(n) + 1);
  const std::size_t storage = bounded_->capacity();
  std::uint32_t* const hs = bounded_->packed_mut();
  std::uint64_t* const lb = bounded_->labels_mut();
  std::uint32_t* const counts = counts_.data();
  std::uint32_t* const starts = starts_.data();
  // Touching writes the zeroes the buffers are already guaranteed to
  // hold; its only effect is page placement, so running it serially
  // (shards == 1) or on workers changes nothing observable.
  const auto touch = [&](std::size_t, std::size_t lo, std::size_t hi) {
    std::memset(hs + lo, 0, (hi - lo) * sizeof(std::uint32_t));
    std::memset(lb + lo * storage, 0,
                (hi - lo) * storage * sizeof(std::uint64_t));
    std::memset(counts + lo, 0, (hi - lo) * sizeof(std::uint32_t));
    std::memset(starts + lo, 0, (hi - lo) * sizeof(std::uint32_t));
  };
  if (config_.shards > 1) {
    run_sharded(touch);
  } else {
    touch(0, 0, n);
  }
}

void Capped::merge_sorted_into_pool(
    std::span<const queueing::AgedPool::Bucket> entries) {
  // Two-pointer merge of the (sorted) entries into the (sorted) pool,
  // preserving the oldest-first bucket order.
  merge_scratch_.clear();
  std::size_t i = 0;
  for (const auto& bucket : pool_.buckets()) {
    while (i < entries.size() && entries[i].label < bucket.label) {
      merge_scratch_.add(entries[i].label, entries[i].count);
      ++i;
    }
    if (i < entries.size() && entries[i].label == bucket.label) {
      merge_scratch_.add(bucket.label, bucket.count + entries[i].count);
      ++i;
    } else {
      merge_scratch_.add(bucket.label, bucket.count);
    }
  }
  for (; i < entries.size(); ++i) {
    merge_scratch_.add(entries[i].label, entries[i].count);
  }
  pool_.swap(merge_scratch_);
}

void Capped::merge_requeued_into_pool() {
  // requeue_ is a std::map, so its (label, count) pairs come out sorted
  // and order-independent of which kernel (or shard) recorded them.
  requeue_scratch_.clear();
  for (const auto& [label, count] : requeue_) {
    requeue_scratch_.push_back({label, count});
  }
  merge_sorted_into_pool(requeue_scratch_);
  requeue_.clear();
}

void Capped::delete_from_bin(std::uint32_t bin, RoundMetrics& m) {
  std::uint64_t label;
  std::uint64_t position = 0;  // queue index served
  if (infinite()) {
    label = unbounded_->pop_front(bin);  // discipline applies to finite c
  } else {
    switch (config_.deletion) {
      case DeletionDiscipline::kFifo:
        label = bounded_->pop_front(bin);
        break;
      case DeletionDiscipline::kLifo:
        position = bounded_->load(bin) - 1;
        label = bounded_->pop_back(bin);
        break;
      case DeletionDiscipline::kUniform:
        position = rng::bounded32(engine_, bounded_->load(bin));
        label = bounded_->pop_at(bin, static_cast<std::uint32_t>(position));
        break;
      default:
        label = bounded_->pop_front(bin);
    }
  }
  record_wait(bin, label, position, m);
}

}  // namespace iba::core
