#include "core/capped.hpp"

#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "rng/bounded.hpp"
#include "rng/distributions.hpp"
#include "telemetry/ball_trace.hpp"

namespace iba::core {

CappedConfig CappedConfig::from_rate(std::uint32_t n, double lambda,
                                     std::uint32_t capacity) {
  IBA_EXPECT(n > 0, "CappedConfig: n must be positive");
  IBA_EXPECT(lambda >= 0.0 && lambda <= 1.0,
             "CappedConfig: lambda must lie in [0, 1]");
  const double exact = lambda * static_cast<double>(n);
  const double rounded = std::round(exact);
  IBA_EXPECT(std::abs(exact - rounded) < 1e-6,
             "CappedConfig: lambda * n must be integral");
  CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = static_cast<std::uint64_t>(rounded);
  config.validate();
  return config;
}

void CappedConfig::validate() const {
  IBA_EXPECT(n > 0, "CappedConfig: n must be positive");
  IBA_EXPECT(capacity > 0, "CappedConfig: capacity must be positive");
  IBA_EXPECT(lambda_n <= n,
             "CappedConfig: lambda_n must not exceed n (lambda <= 1)");
  IBA_EXPECT(failure_probability >= 0.0 && failure_probability < 1.0,
             "CappedConfig: failure_probability must lie in [0, 1)");
  IBA_EXPECT(failure_mode != FailureMode::kCrashRequeue ||
                 capacity != kInfiniteCapacity,
             "CappedConfig: crash-requeue requires finite capacity");
}

Capped::Capped(const CappedConfig& config, Engine engine)
    : config_(config), engine_(engine) {
  config_.validate();
  if (infinite()) {
    unbounded_.emplace(config_.n);
  } else {
    bounded_.emplace(config_.n, config_.capacity);
  }
}

Capped::Capped(const CappedSnapshot& snapshot)
    : Capped(snapshot.config, Engine(snapshot.engine_state)) {
  round_ = snapshot.round;
  generated_total_ = snapshot.generated_total;
  deleted_total_ = snapshot.deleted_total;
  for (const auto& bucket : snapshot.pool) {
    pool_.add(bucket.label, bucket.count);
  }
  IBA_EXPECT(snapshot.bin_queues.size() == config_.n,
             "CappedSnapshot: bin_queues size must equal n");
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    for (const std::uint64_t label : snapshot.bin_queues[bin]) {
      if (infinite()) {
        unbounded_->push(bin, label);
      } else {
        IBA_EXPECT(bounded_->load(bin) < config_.capacity,
                   "CappedSnapshot: bin queue exceeds capacity");
        bounded_->push(bin, label);
      }
    }
  }
}

CappedSnapshot Capped::snapshot() const {
  CappedSnapshot snap;
  snap.config = config_;
  snap.round = round_;
  snap.generated_total = generated_total_;
  snap.deleted_total = deleted_total_;
  snap.engine_state = engine_.state();
  snap.pool.assign(pool_.buckets().begin(), pool_.buckets().end());
  snap.bin_queues.resize(config_.n);
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    const auto load = static_cast<std::uint32_t>(this->load(bin));
    auto& queue = snap.bin_queues[bin];
    queue.reserve(load);
    for (std::uint32_t i = 0; i < load; ++i) {
      if (infinite()) {
        // UnboundedBinTable exposes no random access; infinite-capacity
        // snapshots rebuild via pops on a scratch copy below.
        break;
      }
      queue.push_back(bounded_->peek(bin, i));
    }
  }
  if (infinite()) {
    // Drain a copy to read the queues non-destructively.
    queueing::UnboundedBinTable copy = *unbounded_;
    for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
      while (copy.load(bin) > 0) {
        snap.bin_queues[bin].push_back(copy.pop_front(bin));
      }
    }
  }
  return snap;
}

std::uint64_t Capped::sample_arrivals() {
  switch (config_.arrival) {
    case ArrivalModel::kDeterministic:
      return config_.lambda_n;
    case ArrivalModel::kBinomial:
      // n generators, each producing one ball w.p. λ (footnote 2).
      return rng::binomial(engine_, config_.n, config_.lambda());
    case ArrivalModel::kPoisson:
      return rng::poisson(engine_, static_cast<double>(config_.lambda_n));
  }
  return config_.lambda_n;
}

RoundMetrics Capped::step() {
  const std::uint64_t generated = sample_arrivals();
  const std::uint64_t nu = pool_.total() + generated;
  {
    telemetry::ScopedPhaseTimer timer(timers_, telemetry::Phase::kThrow, nu);
    choice_scratch_.resize(nu);
    for (auto& choice : choice_scratch_) {
      choice = rng::bounded32(engine_, config_.n);
    }
  }
  return step_internal(generated, choice_scratch_);
}

RoundMetrics Capped::step_with_choices(
    std::span<const std::uint32_t> choices) {
  IBA_EXPECT(config_.arrival == ArrivalModel::kDeterministic,
             "Capped: step_with_choices requires deterministic arrivals");
  IBA_EXPECT(choices.size() == balls_to_throw(),
             "Capped: need exactly one bin choice per thrown ball");
  return step_internal(config_.lambda_n, choices);
}

RoundMetrics Capped::step_internal(std::uint64_t generated,
                                   std::span<const std::uint32_t> choices) {
  ++round_;
  pool_.add(round_, generated);
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    // Ball ids are the global generation sequence: this cohort occupies
    // ids generated_total_ .. generated_total_ + generated - 1.
    if (tracer_ != nullptr) {
      tracer_->on_arrivals(round_, generated_total_, generated);
    }
  }
  generated_total_ += generated;
  return allocate_and_delete(generated, choices);
}

RoundMetrics Capped::allocate_and_delete(
    std::uint64_t generated, std::span<const std::uint32_t> choices) {
  RoundMetrics m;
  m.round = round_;
  m.generated = generated;
  m.thrown = pool_.total();

  // Allocation. Pool buckets are visited in preference order (the
  // paper's oldest-first, or the ablation's inversion); each bin accepts
  // while it has room, which realizes "accept the preferred min{c−ℓ, ν}
  // requests" exactly (see the header comment).
  telemetry::ScopedPhaseTimer accept_timer(timers_, telemetry::Phase::kAccept,
                                           m.thrown);
  survivors_.clear();
  const auto trace_throw = [this](std::uint64_t label, std::uint32_t bin,
                                  std::uint64_t load, bool accepted) {
    if constexpr (IBA_TELEMETRY_ENABLED != 0) {
      if (tracer_ != nullptr) tracer_->on_throw(label, bin, load, accepted);
    } else {
      (void)this;
      (void)label;
      (void)bin;
      (void)load;
      (void)accepted;
    }
  };
  std::size_t idx = 0;
  if (infinite()) {
    for (const auto& bucket : pool_.buckets()) {
      for (std::uint64_t k = 0; k < bucket.count; ++k) {
        const std::uint32_t bin = choices[idx++];
        if constexpr (IBA_TELEMETRY_ENABLED != 0) {
          if (tracer_ != nullptr) {
            tracer_->on_throw(bucket.label, bin, unbounded_->load(bin), true);
          }
        }
        unbounded_->push(bin, bucket.label);
      }
    }
    m.accepted = m.thrown;
  } else if (config_.acceptance == AcceptanceOrder::kOldestFirst) {
    const std::uint32_t cap = config_.capacity;
    for (const auto& bucket : pool_.buckets()) {
      for (std::uint64_t k = 0; k < bucket.count; ++k) {
        const std::uint32_t bin = choices[idx++];
        const std::uint64_t load = bounded_->load(bin);
        if (load < cap) {
          bounded_->push(bin, bucket.label);
          ++m.accepted;
          trace_throw(bucket.label, bin, load, true);
        } else {
          survivors_.add(bucket.label, 1);
          trace_throw(bucket.label, bin, load, false);
        }
      }
    }
  } else {
    // Youngest-first ablation: buckets visited in reverse. Survivors are
    // seen youngest-first, so they are staged and re-added oldest-first
    // to keep the pool's label order intact.
    const std::uint32_t cap = config_.capacity;
    const auto& buckets = pool_.buckets();
    reverse_survivor_scratch_.clear();
    for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
      std::uint64_t rejected = 0;
      for (std::uint64_t k = 0; k < it->count; ++k) {
        const std::uint32_t bin = choices[idx++];
        const std::uint64_t load = bounded_->load(bin);
        if (load < cap) {
          bounded_->push(bin, it->label);
          ++m.accepted;
          trace_throw(it->label, bin, load, true);
        } else {
          ++rejected;
          trace_throw(it->label, bin, load, false);
        }
      }
      if (rejected > 0) {
        reverse_survivor_scratch_.push_back({it->label, rejected});
      }
    }
    for (auto it = reverse_survivor_scratch_.rbegin();
         it != reverse_survivor_scratch_.rend(); ++it) {
      survivors_.add(it->label, it->count);
    }
  }
  IBA_ASSERT(idx == choices.size());
  pool_.swap(survivors_);
  accept_timer.stop();

  // Deletion: every non-empty, non-failed bin serves one ball.
  telemetry::ScopedPhaseTimer delete_timer(timers_, telemetry::Phase::kDelete);
  const bool failures = config_.failure_probability > 0.0;
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    const std::uint64_t load =
        infinite() ? unbounded_->load(bin) : bounded_->load(bin);
    if (load == 0) continue;
    if (failures &&
        rng::uniform01(engine_) < config_.failure_probability) {
      if (config_.failure_mode == FailureMode::kCrashRequeue) {
        // The bin crashes: its buffered balls return to the pool with
        // their original labels (ages keep accruing).
        while (bounded_->load(bin) > 0) {
          const std::uint64_t crashed = bounded_->pop_front(bin);
          if constexpr (IBA_TELEMETRY_ENABLED != 0) {
            if (tracer_ != nullptr) tracer_->on_requeue(bin, crashed);
          }
          ++requeue_[crashed];
          ++m.requeued;
        }
      }
      continue;  // no service from this bin this round
    }
    delete_from_bin(bin, m);
  }
  delete_timer.set_balls(m.deleted);
  delete_timer.stop();
  deleted_total_ += m.deleted;
  if (!requeue_.empty()) merge_requeued_into_pool();
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    if (tracer_ != nullptr) tracer_->on_round_end(round_);
  }

  m.pool_size = pool_.total();
  m.oldest_pool_age = pool_.oldest_age(round_);
  if (infinite()) {
    m.total_load = unbounded_->total_load();
    m.max_load = unbounded_->max_load();
    m.empty_bins = unbounded_->empty_bins();
  } else {
    m.total_load = bounded_->total_load();
    m.max_load = bounded_->max_load();
    m.empty_bins = bounded_->empty_bins();
  }
  return m;
}

void Capped::merge_requeued_into_pool() {
  // Two-pointer merge of the (sorted) requeue map into the (sorted)
  // pool, preserving the oldest-first bucket order.
  merge_scratch_.clear();
  auto it = requeue_.begin();
  for (const auto& bucket : pool_.buckets()) {
    while (it != requeue_.end() && it->first < bucket.label) {
      merge_scratch_.add(it->first, it->second);
      ++it;
    }
    if (it != requeue_.end() && it->first == bucket.label) {
      merge_scratch_.add(bucket.label, bucket.count + it->second);
      ++it;
    } else {
      merge_scratch_.add(bucket.label, bucket.count);
    }
  }
  for (; it != requeue_.end(); ++it) {
    merge_scratch_.add(it->first, it->second);
  }
  pool_.swap(merge_scratch_);
  requeue_.clear();
}

void Capped::delete_from_bin(std::uint32_t bin, RoundMetrics& m) {
  std::uint64_t label;
  [[maybe_unused]] std::uint64_t position = 0;  // queue index served
  if (infinite()) {
    label = unbounded_->pop_front(bin);  // discipline applies to finite c
  } else {
    switch (config_.deletion) {
      case DeletionDiscipline::kFifo:
        label = bounded_->pop_front(bin);
        break;
      case DeletionDiscipline::kLifo:
        position = bounded_->load(bin) - 1;
        label = bounded_->pop_back(bin);
        break;
      case DeletionDiscipline::kUniform:
        position = rng::bounded32(engine_, bounded_->load(bin));
        label = bounded_->pop_at(bin, static_cast<std::uint32_t>(position));
        break;
      default:
        label = bounded_->pop_front(bin);
    }
  }
  if constexpr (IBA_TELEMETRY_ENABLED != 0) {
    if (tracer_ != nullptr) tracer_->on_delete(bin, label, position);
  }
  const std::uint64_t wait = round_ - label;
  waits_.record(wait);
  ++m.deleted;
  ++m.wait_count;
  m.wait_sum += static_cast<double>(wait);
  if (wait > m.wait_max) m.wait_max = wait;
}

}  // namespace iba::core
