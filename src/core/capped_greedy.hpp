// CAPPED-GREEDY(c, d, λ) — an extension combining the paper's finite
// buffers with the power of d choices, answering the natural follow-up
// question the paper's introduction raises: buffers substitute for
// multiple choices in parallel settings — do the two compose?
//
// Per round: λn new balls join the pool; every pool ball samples d bins
// independently and uniformly at random and *requests* the one whose
// start-of-round load is smallest (the batch does not observe itself,
// matching the GREEDY[d] batch semantics of [PODC'16]); each bin then
// accepts the oldest min{c − ℓ, ν} of its ν requests; every non-empty
// bin deletes its front ball. d = 1 recovers CAPPED(c, λ) exactly.
//
// bench_dchoice measures how much d = 2 adds on top of the buffer — the
// paper's own answer (Section I-B) is that buffers already capture most
// of the benefit, at one random choice per ball per round.
#pragma once

#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"

namespace iba::core {

struct CappedGreedyConfig {
  std::uint32_t n = 0;
  std::uint32_t capacity = 1;
  std::uint32_t d = 2;         ///< choices per ball per round
  std::uint64_t lambda_n = 0;

  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  void validate() const;
};

/// The d-choice CAPPED process. Deterministic given (config, engine).
class CappedGreedy {
 public:
  CappedGreedy(const CappedGreedyConfig& config, Engine engine);

  RoundMetrics step();

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] std::uint32_t d() const noexcept { return config_.d; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return bins_.load(i);
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return bins_.total_load();
  }
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  void reset_wait_stats() noexcept { waits_.reset(); }

  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }

 private:
  CappedGreedyConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;
  std::vector<std::uint32_t> load_snapshot_;
  queueing::BinTable bins_;
  WaitRecorder waits_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;
};

static_assert(AllocationProcess<CappedGreedy>);

}  // namespace iba::core
