#include "core/supermarket.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "rng/bounded.hpp"
#include "rng/distributions.hpp"

namespace iba::core {

void SupermarketConfig::validate() const {
  IBA_EXPECT(n > 0, "SupermarketConfig: n must be positive");
  IBA_EXPECT(d >= 1, "SupermarketConfig: d must be at least 1");
  IBA_EXPECT(lambda > 0.0 && lambda < 1.0,
             "SupermarketConfig: lambda must lie in (0, 1)");
}

Supermarket::Supermarket(const SupermarketConfig& config, Engine engine)
    : config_(config), engine_(engine), queues_(config.n) {
  config_.validate();
  busy_.reserve(config_.n);
  busy_slot_.assign(config_.n, 0);
}

double Supermarket::fixed_point_tail(double lambda, std::uint32_t d,
                                     std::uint64_t k) {
  IBA_EXPECT(d >= 1, "fixed_point_tail: d must be at least 1");
  if (k == 0) return 1.0;
  const double exponent =
      d == 1 ? static_cast<double>(k)
             : (std::pow(static_cast<double>(d), static_cast<double>(k)) -
                1.0) /
                   (static_cast<double>(d) - 1.0);
  return std::pow(lambda, exponent);
}

std::uint64_t Supermarket::advance(double duration) {
  const double deadline = now_ + duration;
  const double arrival_rate =
      config_.lambda * static_cast<double>(config_.n);
  std::uint64_t events = 0;
  for (;;) {
    const double busy_rate = static_cast<double>(busy_.size());
    const double total_rate = arrival_rate + busy_rate;
    const double wait = rng::exponential(engine_, total_rate);
    if (now_ + wait > deadline) {
      now_ = deadline;
      return events;
    }
    now_ += wait;
    ++events;
    if (rng::uniform01(engine_) * total_rate < arrival_rate) {
      arrival();
    } else {
      departure();
    }
  }
}

void Supermarket::arrival() {
  // Sample d queues; join a shortest one (first minimum among samples).
  std::uint32_t best = rng::bounded32(engine_, config_.n);
  for (std::uint32_t j = 1; j < config_.d; ++j) {
    const std::uint32_t candidate = rng::bounded32(engine_, config_.n);
    if (queues_[candidate].size() < queues_[best].size()) best = candidate;
  }
  if (queues_[best].empty()) {
    busy_slot_[best] = static_cast<std::uint32_t>(busy_.size());
    busy_.push_back(best);
  }
  queues_[best].push_back(now_);
  ++in_system_;
}

void Supermarket::departure() {
  IBA_ASSERT(!busy_.empty());
  // Every busy server completes at rate 1: the departing server is
  // uniform among the busy ones.
  const std::uint32_t slot =
      rng::bounded32(engine_, static_cast<std::uint32_t>(busy_.size()));
  const std::uint32_t server = busy_[slot];
  auto& queue = queues_[server];
  sojourn_.add(now_ - queue.front());
  queue.pop_front();
  --in_system_;
  if (queue.empty()) {
    // O(1) removal from the busy set: move the last entry into the slot.
    busy_[slot] = busy_.back();
    busy_slot_[busy_[slot]] = slot;
    busy_.pop_back();
  }
}

double Supermarket::tail_fraction(std::uint64_t k) const noexcept {
  std::uint32_t count = 0;
  for (const auto& queue : queues_) {
    if (queue.size() >= k) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(config_.n);
}

}  // namespace iba::core
