// CAPPED(c, λ) — the paper's primary contribution (Algorithm 1).
//
// Per round: λn new balls join the pool; every pool ball samples one bin
// independently and uniformly at random; each bin accepts the oldest
// min{c − ℓ, ν} of its ν requests (ties arbitrary); at the end of the
// round every non-empty bin deletes the ball at the front of its FIFO
// queue. A ball's waiting time is its age when deleted.
//
// Implementation notes:
//  * Balls are indistinguishable except for their generation round, so
//    the pool is age-bucketed (AgedPool). Iterating buckets oldest-first
//    while bins accept greedily until full realizes exactly "each bin
//    accepts the oldest min{c − ℓ, ν} requests": a younger ball is never
//    accepted by a bin that rejected an older request in the same round.
//    tests/core_capped_oracle_test.cpp checks this against an independent
//    explicit-ball implementation, trajectory for trajectory.
//  * capacity = kInfiniteCapacity removes the buffer limit, which makes
//    the process identical to the batch GREEDY[1] of [PODC'16].
//  * step_with_choices() lets callers supply the bin choices, which is
//    how the MODCAPPED coupling (Lemma 6) and the oracle tests drive two
//    processes with shared randomness.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "core/metrics.hpp"
#include "core/policies.hpp"
#include "core/process.hpp"
#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"
#include "queueing/unbounded_bin_table.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/telemetry_config.hpp"

namespace iba::telemetry {
class BallTracer;
}  // namespace iba::telemetry

namespace iba::core {

/// Configuration of a CAPPED(c, λ) instance. λ is specified through the
/// integral per-round arrival count λn, exactly as in the paper's model.
/// The policy fields default to the paper's process; changing them gives
/// the footnote-2 stochastic-arrival variant and the ablations of
/// DESIGN.md §7.
struct CappedConfig {
  std::uint32_t n = 0;          ///< number of bins
  std::uint32_t capacity = 1;   ///< buffer size c, or kInfiniteCapacity
  std::uint64_t lambda_n = 0;   ///< λ·n, new balls per round (integral)

  ArrivalModel arrival = ArrivalModel::kDeterministic;
  DeletionDiscipline deletion = DeletionDiscipline::kFifo;
  AcceptanceOrder acceptance = AcceptanceOrder::kOldestFirst;
  /// Per-round, per-bin probability of a service failure.
  /// 0 = the paper's reliable bins.
  double failure_probability = 0.0;
  /// What failure does: skip one service opportunity, or crash and dump
  /// the buffer back into the pool. kCrashRequeue requires finite c.
  FailureMode failure_mode = FailureMode::kSkipService;

  static constexpr std::uint32_t kInfiniteCapacity = 0xFFFFFFFFu;

  /// λ as a real number.
  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  /// Builds a config from a real rate; requires λ·n to be integral
  /// (within fp tolerance), as the model assumes.
  static CappedConfig from_rate(std::uint32_t n, double lambda,
                                std::uint32_t capacity);

  /// Throws ContractViolation when the configuration is unusable.
  void validate() const;
};

/// Complete dynamic state of a Capped process — everything needed to
/// resume a run bit-for-bit (except the waiting-time statistics, which
/// restart empty; resumed runs reset them after burn-in anyway).
struct CappedSnapshot {
  CappedConfig config;
  std::uint64_t round = 0;
  std::uint64_t generated_total = 0;
  std::uint64_t deleted_total = 0;
  std::array<std::uint64_t, 4> engine_state{};
  std::vector<queueing::AgedPool::Bucket> pool;        ///< oldest-first
  std::vector<std::vector<std::uint64_t>> bin_queues;  ///< front-first
};

/// The CAPPED(c, λ) process. Deterministic given (config, engine).
class Capped {
 public:
  static constexpr std::uint32_t kInfiniteCapacity =
      CappedConfig::kInfiniteCapacity;

  Capped(const CappedConfig& config, Engine engine);

  /// Resumes from a snapshot: identical future trajectory to the
  /// process the snapshot was taken from (wait statistics start empty).
  explicit Capped(const CappedSnapshot& snapshot);

  /// Captures the complete dynamic state (O(n·c + pool)).
  [[nodiscard]] CappedSnapshot snapshot() const;

  /// Advances one round, drawing bin choices from the internal engine.
  RoundMetrics step();

  /// Advances one round using caller-provided bin choices, one per thrown
  /// ball in pool order (oldest bucket first; query balls_to_throw()
  /// for the required count *before* calling). Requires deterministic
  /// arrivals — with stochastic models the throw count is not knowable
  /// in advance.
  RoundMetrics step_with_choices(std::span<const std::uint32_t> choices);

  /// Number of balls that will sample bins in the *next* round
  /// (current pool + the λn arrivals of that round). Exact for
  /// deterministic arrivals; the expectation otherwise.
  [[nodiscard]] std::uint64_t balls_to_throw() const noexcept {
    return pool_.total() + config_.lambda_n;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] double lambda() const noexcept { return config_.lambda(); }
  [[nodiscard]] std::uint64_t lambda_n() const noexcept {
    return config_.lambda_n;
  }

  /// Changes the arrival rate for subsequent rounds (time-varying load,
  /// e.g. diurnal patterns). Takes effect from the next step().
  void set_lambda_n(std::uint64_t lambda_n) {
    IBA_EXPECT(lambda_n <= config_.n,
               "Capped: lambda_n must not exceed n (lambda <= 1)");
    config_.lambda_n = lambda_n;
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }
  [[nodiscard]] const queueing::AgedPool& pool() const noexcept {
    return pool_;
  }

  /// End-of-round load of bin `i`.
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return infinite() ? unbounded_->load(i) : bounded_->load(i);
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return infinite() ? unbounded_->total_load() : bounded_->total_load();
  }

  /// Attaches (or detaches, with nullptr) a phase-timer sink: subsequent
  /// steps credit their throw / accept / delete sections to it. With no
  /// sink attached the instrumented sections read no clock.
  void set_phase_timers(telemetry::PhaseTimers* timers) noexcept {
    timers_ = timers;
  }

  /// Attaches (or detaches, with nullptr) a ball tracer: subsequent steps
  /// report every arrival / throw / delete / requeue to it, from which it
  /// shadow-tracks sampled balls (see telemetry/ball_trace.hpp). Attach
  /// before the first step — the tracer reconstructs ball identity from
  /// the event stream, so it must see the run from the start. With
  /// -DIBA_TELEMETRY=OFF the hook calls compile out entirely.
  void set_ball_tracer(telemetry::BallTracer* tracer) noexcept {
    tracer_ = tracer;
  }

  /// Waiting-time statistics over every ball deleted so far.
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  /// Clears the waiting-time statistics (e.g. after burn-in).
  void reset_wait_stats() noexcept { waits_.reset(); }

  /// Lifetime accounting for conservation checks:
  /// generated_total() == pool_size() + total_load() + deleted_total().
  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }

 private:
  [[nodiscard]] bool infinite() const noexcept {
    return config_.capacity == kInfiniteCapacity;
  }

  [[nodiscard]] std::uint64_t sample_arrivals();
  RoundMetrics step_internal(std::uint64_t generated,
                             std::span<const std::uint32_t> choices);
  RoundMetrics allocate_and_delete(std::uint64_t generated,
                                   std::span<const std::uint32_t> choices);
  void delete_from_bin(std::uint32_t bin, RoundMetrics& m);

  CappedConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  void merge_requeued_into_pool();

  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;  // scratch, reused across rounds
  queueing::AgedPool merge_scratch_;
  std::vector<std::uint32_t> choice_scratch_;
  std::vector<queueing::AgedPool::Bucket> reverse_survivor_scratch_;
  std::map<std::uint64_t, std::uint64_t> requeue_;  // label → crashed count
  std::optional<queueing::BinTable> bounded_;
  std::optional<queueing::UnboundedBinTable> unbounded_;
  telemetry::PhaseTimers* timers_ = nullptr;
  telemetry::BallTracer* tracer_ = nullptr;
  WaitRecorder waits_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;
};

static_assert(AllocationProcess<Capped>);

}  // namespace iba::core
