// CAPPED(c, λ) — the paper's primary contribution (Algorithm 1).
//
// Per round: λn new balls join the pool; every pool ball samples one bin
// independently and uniformly at random; each bin accepts the oldest
// min{c − ℓ, ν} of its ν requests (ties arbitrary); at the end of the
// round every non-empty bin deletes the ball at the front of its FIFO
// queue. A ball's waiting time is its age when deleted.
//
// Implementation notes:
//  * Balls are indistinguishable except for their generation round, so
//    the pool is age-bucketed (AgedPool). Iterating buckets oldest-first
//    while bins accept greedily until full realizes exactly "each bin
//    accepts the oldest min{c − ℓ, ν} requests": a younger ball is never
//    accepted by a bin that rejected an older request in the same round.
//    tests/core_capped_oracle_test.cpp checks this against an independent
//    explicit-ball implementation, trajectory for trajectory.
//  * capacity = kInfiniteCapacity removes the buffer limit, which makes
//    the process identical to the batch GREEDY[1] of [PODC'16].
//  * step_with_choices() lets callers supply the bin choices, which is
//    how the MODCAPPED coupling (Lemma 6) and the oracle tests drive two
//    processes with shared randomness.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "concurrency/thread_pool.hpp"
#include "control/controller.hpp"
#include "core/fault_hooks.hpp"
#include "core/metrics.hpp"
#include "core/policies.hpp"
#include "core/process.hpp"
#include "core/arena.hpp"
#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"
#include "queueing/unbounded_bin_table.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/telemetry_config.hpp"
#include "telemetry/timeseries.hpp"

namespace iba::telemetry {
class BallTracer;
}  // namespace iba::telemetry

namespace iba::core {

/// Configuration of a CAPPED(c, λ) instance. λ is specified through the
/// integral per-round arrival count λn, exactly as in the paper's model.
/// The policy fields default to the paper's process; changing them gives
/// the footnote-2 stochastic-arrival variant and the ablations of
/// DESIGN.md §7.
struct CappedConfig {
  std::uint32_t n = 0;          ///< number of bins
  std::uint32_t capacity = 1;   ///< buffer size c, or kInfiniteCapacity
  std::uint64_t lambda_n = 0;   ///< λ·n, new balls per round (integral)

  ArrivalModel arrival = ArrivalModel::kDeterministic;
  DeletionDiscipline deletion = DeletionDiscipline::kFifo;
  AcceptanceOrder acceptance = AcceptanceOrder::kOldestFirst;
  /// Per-round, per-bin probability of a service failure.
  /// 0 = the paper's reliable bins.
  double failure_probability = 0.0;
  /// What failure does: skip one service opportunity, or crash and dump
  /// the buffer back into the pool. kCrashRequeue requires finite c.
  FailureMode failure_mode = FailureMode::kSkipService;

  /// How the round hot path executes. Both kernels produce byte-identical
  /// trajectories for the same seed; kBinMajor is the fast default, the
  /// scalar path is kept for differential testing (docs/PERFORMANCE.md).
  RoundKernel kernel = RoundKernel::kBinMajor;
  /// Number of contiguous bin ranges the bin-major kernel executes in
  /// parallel (1 = inline, no thread pool). Requires kernel == kBinMajor
  /// when > 1. Results are invariant in this value — failure coins and
  /// uniform-deletion draws are pre-sampled in bin order from the master
  /// engine, so the RNG stream never depends on scheduling.
  std::uint32_t shards = 1;

  // Execution hints for shards > 1 and large n. None of these changes a
  // single result byte — they steer thread and page placement only — so
  // they are deliberately NOT serialized into checkpoints (a snapshot
  // taken with them on resumes bit-identically with them off).
  /// Pin pool workers to CPUs so first-touched pages stay on the
  /// worker's NUMA node (best-effort; see concurrency::ThreadPool).
  bool pin_threads = false;
  /// mmap/huge-page arena behind the bin table and kernel scratch
  /// (see core/arena.hpp).
  ArenaConfig arena;

  /// Pool bound for backpressure (0 = unbounded, the paper's model).
  /// The bound applies at admission: arrivals beyond it are shed or
  /// deferred per `backpressure`; balls already in flight never drop.
  std::uint64_t pool_limit = 0;
  BackpressureMode backpressure = BackpressureMode::kNone;
  /// Rounds a deferred arrival waits before retrying admission
  /// (kDeferRetry). Deterministic: no randomness in the backoff.
  std::uint32_t backoff_rounds = 4;

  /// Adaptive control plane (src/control/): when control.policy is not
  /// 'none', a controller retunes `capacity` (and, with an admission
  /// target, `pool_limit`) at round boundaries. Requires finite
  /// capacity, and capacity ≤ control.c_max.
  control::ControlConfig control;

  static constexpr std::uint32_t kInfiniteCapacity = 0xFFFFFFFFu;

  /// λ as a real number.
  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  /// Builds a config from a real rate; requires λ·n to be integral
  /// (within fp tolerance), as the model assumes.
  static CappedConfig from_rate(std::uint32_t n, double lambda,
                                std::uint32_t capacity);

  /// Throws ContractViolation when the configuration is unusable.
  void validate() const;
};

/// One bucket of deferred arrivals (kDeferRetry backpressure): `count`
/// balls generated in round `label`, eligible to retry at round `ready`.
struct DeferredBucket {
  std::uint64_t label = 0;
  std::uint64_t count = 0;
  std::uint64_t ready = 0;
};

/// Wait-recorder state captured in a snapshot — exact integer moments
/// (Σw² split into 64-bit halves) plus the dyadic histogram — so a
/// resumed run continues the cumulative waiting-time statistics
/// bit-for-bit instead of restarting them.
struct CappedWaitState {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t sumsq_hi = 0;
  std::uint64_t sumsq_lo = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> histogram;  ///< Log2Histogram counts
};

/// Complete dynamic state of a Capped process — everything needed to
/// resume a run bit-for-bit, including the cumulative waiting-time
/// statistics and backpressure accounting. Fault-plan state (when a
/// plan is attached) lives beside the snapshot in the checkpoint file
/// (sim/checkpoint.hpp); the plan is external to the process.
struct CappedSnapshot {
  CappedConfig config;
  std::uint64_t round = 0;
  std::uint64_t generated_total = 0;
  std::uint64_t deleted_total = 0;
  std::uint64_t shed_total = 0;
  std::array<std::uint64_t, 4> engine_state{};
  std::vector<queueing::AgedPool::Bucket> pool;        ///< oldest-first
  std::vector<DeferredBucket> deferred;                ///< retry order
  std::vector<std::vector<std::uint64_t>> bin_queues;  ///< front-first
  CappedWaitState waits;
  /// Controller state; meaningful iff config.control.enabled(). A
  /// snapshot taken mid-shrink records the (smaller) current capacity
  /// in `config`, and bins still draining may exceed it — the restore
  /// path sizes the storage to the longest queue.
  control::ControllerState controller;
};

/// The CAPPED(c, λ) process. Deterministic given (config, engine).
class Capped {
 public:
  static constexpr std::uint32_t kInfiniteCapacity =
      CappedConfig::kInfiniteCapacity;

  Capped(const CappedConfig& config, Engine engine);

  /// Resumes from a snapshot: identical future trajectory to the
  /// process the snapshot was taken from, with the cumulative wait
  /// statistics continued bit-for-bit.
  explicit Capped(const CappedSnapshot& snapshot);

  /// Captures the complete dynamic state (O(n·c + pool)).
  [[nodiscard]] CappedSnapshot snapshot() const;

  /// Advances one round, drawing bin choices from the internal engine.
  RoundMetrics step();

  /// Advances one round using caller-provided bin choices, one per thrown
  /// ball in pool order (oldest bucket first; query balls_to_throw()
  /// for the required count *before* calling). Requires deterministic
  /// arrivals — with stochastic models the throw count is not knowable
  /// in advance — and no fault plan or backpressure (both change the
  /// thrown count in ways the coupling callers cannot anticipate).
  RoundMetrics step_with_choices(std::span<const std::uint32_t> choices);

  /// Number of balls that will sample bins in the *next* round
  /// (current pool + the λn arrivals of that round). Exact for
  /// deterministic arrivals; the expectation otherwise.
  [[nodiscard]] std::uint64_t balls_to_throw() const noexcept {
    return pool_.total() + config_.lambda_n;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] double lambda() const noexcept { return config_.lambda(); }
  [[nodiscard]] std::uint64_t lambda_n() const noexcept {
    return config_.lambda_n;
  }

  /// The backing arena, or nullptr when config.arena.enabled is false.
  /// Exposed for allocation-steadiness checks: after warm-up, a round
  /// must not grow allocation_count()/live_bytes().
  [[nodiscard]] const Arena* arena() const noexcept { return arena_.get(); }

  /// Changes the arrival rate for subsequent rounds (time-varying load,
  /// e.g. diurnal patterns). Takes effect from the next step().
  void set_lambda_n(std::uint64_t lambda_n) {
    IBA_EXPECT(lambda_n <= config_.n,
               "Capped: lambda_n must not exceed n (lambda <= 1)");
    config_.lambda_n = lambda_n;
  }

  /// Retunes the per-bin capacity for subsequent rounds (the adaptive
  /// controller's actuator; also callable directly for scripted
  /// capacity schedules). Growth is instantaneous — the backing storage
  /// widens if needed and every bin accepts up to the new c from the
  /// next round. Shrink is drain-based: storage is untouched, bins
  /// whose load exceeds the new c simply accept nothing until the
  /// regular one-per-round deletions bring them at or below it, so the
  /// overfull load is monotone non-increasing and no ball is ever
  /// dropped or reshuffled. Requires finite capacity.
  void set_capacity(std::uint32_t capacity);

  /// Retunes the admission pool bound (the controller's second
  /// actuator). Requires a backpressure mode; takes effect at the next
  /// round's admission.
  void set_pool_limit(std::uint64_t pool_limit) {
    IBA_EXPECT(config_.backpressure != BackpressureMode::kNone,
               "Capped: set_pool_limit requires a backpressure mode");
    IBA_EXPECT(pool_limit > 0, "Capped: pool_limit must be positive");
    config_.pool_limit = pool_limit;
  }

  /// The adaptive controller, when config().control is enabled
  /// (read-only: decisions, estimator, counters). Null otherwise.
  [[nodiscard]] const control::Controller* controller() const noexcept {
    return controller_.get();
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }
  [[nodiscard]] const queueing::AgedPool& pool() const noexcept {
    return pool_;
  }

  /// End-of-round load of bin `i`.
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return infinite() ? unbounded_->load(i) : bounded_->load(i);
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return infinite() ? unbounded_->total_load() : bounded_->total_load();
  }

  /// Attaches (or detaches, with nullptr) a phase-timer sink: subsequent
  /// steps credit their throw / accept / delete sections to it. With no
  /// sink attached the instrumented sections read no clock.
  void set_phase_timers(telemetry::PhaseTimers* timers) noexcept {
    timers_ = timers;
  }

  /// Attaches (or detaches, with nullptr) a time-series recorder: every
  /// subsequent step() ends by feeding it one TimeSeriesSample built
  /// purely from simulation state (no engine draws, no wall-clock), so
  /// recording never perturbs the trajectory and the recorded content is
  /// byte-identical across kernels and shard counts. With
  /// -DIBA_TELEMETRY=OFF the sampling hook compiles out entirely.
  void set_time_series(telemetry::TimeSeries* series) noexcept {
    timeseries_ = series;
  }

  /// Attaches (or detaches, with nullptr) a ball tracer: subsequent steps
  /// report every arrival / throw / delete / requeue to it, from which it
  /// shadow-tracks sampled balls (see telemetry/ball_trace.hpp). Attach
  /// before the first step — the tracer reconstructs ball identity from
  /// the event stream, so it must see the run from the start. With
  /// -DIBA_TELEMETRY=OFF the hook calls compile out entirely.
  void set_ball_tracer(telemetry::BallTracer* tracer) {
    IBA_EXPECT(tracer == nullptr ||
                   config_.backpressure == BackpressureMode::kNone,
               "Capped: ball tracing is incompatible with backpressure "
               "(shed balls would break the tracer's id sequence)");
    tracer_ = tracer;
  }

  /// Attaches (or detaches, with nullptr) a fault plan: from the next
  /// step() on, begin_round() is consulted before each round and the
  /// per-bin flags/effective capacities it publishes are honored
  /// identically by every kernel (scalar, bin-major, fused, sharded).
  /// The provider must draw randomness only from its own stream — the
  /// allocation engine's draw sequence is part of the determinism
  /// contract. Requires finite capacity.
  void set_fault_plan(RoundFaultProvider* plan) {
    IBA_EXPECT(plan == nullptr || !infinite(),
               "Capped: fault injection requires finite capacity");
    fault_plan_ = plan;
    faults_round_ = false;
  }

  /// Attaches (or detaches, with nullptr) a non-uniform bin sampler:
  /// from the next step() on, the per-ball bin choices are drawn through
  /// it instead of uniformly (see core::BinChoiceSampler for the
  /// determinism contract). The sampler must produce indices in
  /// [0, n()). Not serialized in snapshots — reattach the same sampler
  /// after a resume, exactly like a fault plan.
  void set_bin_sampler(BinChoiceSampler* sampler) noexcept {
    bin_sampler_ = sampler;
  }

  /// Routes the controller's decision counters and structured log lines
  /// into `registry` (no-op without a controller).
  void set_control_registry(telemetry::Registry* registry) noexcept {
    if (controller_ != nullptr) controller_->set_registry(registry);
  }

  [[nodiscard]] const CappedConfig& config() const noexcept {
    return config_;
  }

  /// True while a fault plan is attached (it may suppress service, which
  /// relaxes some trajectory invariants — see fault::InvariantAuditor).
  [[nodiscard]] bool has_fault_plan() const noexcept {
    return fault_plan_ != nullptr;
  }

  /// Waiting-time statistics over every ball deleted so far.
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  /// Clears the waiting-time statistics (e.g. after burn-in).
  void reset_wait_stats() noexcept { waits_.reset(); }

  /// Lifetime accounting for conservation checks: generated_total() ==
  /// pool_size() + total_load() + deleted_total() + shed_total() +
  /// deferred_total() (the last two are zero without backpressure).
  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_total_;
  }
  [[nodiscard]] std::uint64_t deferred_total() const noexcept {
    return deferred_total_;
  }

  /// Label of the ball `i` positions behind the front of bin `bin`
  /// (0 = next to be served). For the invariant auditor's FIFO-order
  /// scan; O(1) per peek.
  [[nodiscard]] std::uint64_t bin_label(std::uint32_t bin,
                                        std::uint32_t i) const noexcept {
    return infinite() ? unbounded_->items(bin)[i] : bounded_->peek(bin, i);
  }

 private:
  [[nodiscard]] bool infinite() const noexcept {
    return config_.capacity == kInfiniteCapacity;
  }

  [[nodiscard]] std::uint64_t sample_arrivals();
  /// Outcome of one round's arrival admission (backpressure).
  struct Admission {
    std::uint64_t generated = 0;  ///< balls created this round
    std::uint64_t admitted = 0;   ///< of those, admitted to the pool
    std::uint64_t shed = 0;       ///< of those, dropped (kShed)
  };
  /// Applies the pool bound to this round's arrivals: readmits deferred
  /// balls whose backoff expired (oldest first), then admits as many
  /// fresh arrivals as fit; the excess is shed or deferred. No engine
  /// draws. A no-op returning admitted == generated without backpressure.
  Admission admit_arrivals(std::uint64_t generated);
  /// Consults the fault plan (if any) for the round about to run and
  /// caches its per-bin views for the kernels.
  void begin_round_faults();
  /// Consults the controller (if any) for the round about to run and
  /// applies its capacity / pool-limit targets. Runs before
  /// begin_round_faults() so the fault plan re-baselines against the
  /// round's actual capacity.
  void apply_control();
  RoundMetrics step_internal(const Admission& admission,
                             std::span<const std::uint32_t> choices);
  /// Builds the end-of-round TimeSeriesSample and feeds the attached
  /// recorder. Pure function of simulation state.
  void record_time_series(const RoundMetrics& m);
  RoundMetrics allocate_and_delete(const Admission& admission,
                                   std::span<const std::uint32_t> choices);
  void delete_from_bin(std::uint32_t bin, RoundMetrics& m);

  // -- scalar (ball-at-a-time) round path --
  void accept_scalar(std::span<const std::uint32_t> choices, RoundMetrics& m);
  void delete_scalar(RoundMetrics& m);

  // -- bin-major round kernel (see docs/PERFORMANCE.md) --
  void accept_bin_major(std::span<const std::uint32_t> choices,
                        RoundMetrics& m);
  void flatten_pool_buckets(std::uint64_t expected_total);
  /// Fused accept+delete pass for the unsharded, untraced, finite-capacity
  /// kernel: bucket-sliced two-level partition, chunk-local acceptance
  /// replay, and the delete walk over each chunk's bins while they are
  /// cache-hot. Returns false (nothing mutated) when the pool's bucket
  /// count makes the partition bookkeeping uneconomical; callers then use
  /// the flat paths.
  bool round_fused(std::span<const std::uint32_t> choices, RoundMetrics& m);
  /// preserving the scalar path's exact accumulation order.
  void scatter_and_accept_range(std::span<const std::uint32_t> choices,
                                std::size_t shard, std::uint32_t bin_begin,
                                std::uint32_t bin_end);
  void emit_throw_traces(std::span<const std::uint32_t> choices);
  /// Fused single-pass deletion for the unsharded bin-major kernel; also
  /// computes m.total_load / max_load / empty_bins (returns true when it
  /// did, so the caller skips the end-of-round scans).
  bool delete_bin_major(RoundMetrics& m);
  void delete_sharded(RoundMetrics& m);
  void record_wait(std::uint32_t bin, std::uint64_t label,
                   std::uint64_t position, RoundMetrics& m);
  void run_sharded(const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn);
  /// Like run_sharded but partitions [0, count) items (throw indices)
  /// instead of the bin space, with the same deterministic split.
  void run_sharded_items(std::size_t count,
                         const std::function<void(std::size_t, std::size_t,
                                                  std::size_t)>& fn);
  /// Lazily builds the shard pool (shards > 1), honoring pin_threads
  /// and warning once when pinning did not stick.
  void ensure_shard_pool();
  /// Parallel counting sort of the throws into counts_/starts_/
  /// cand_bucket_ (and rank_scratch_ when tracing), byte-identical to
  /// the serial partition: per-slice range counts, a cross-shard
  /// prefix-sum barrier, a range-staged stable scatter, then per-range
  /// local counting sorts — each shard touching only its own slices.
  void partition_choices_parallel(std::span<const std::uint32_t> choices,
                                  bool tracing);
  /// The acceptance half of scatter_and_accept_range: per-bin bulk
  /// accept over an already-built partition.
  void accept_range(std::size_t shard, std::uint32_t bin_begin,
                    std::uint32_t bin_end);
  /// First-touch pass over the arena-backed bin/scatter state, run on
  /// the shard workers with the bin-range partition so pages land on
  /// the NUMA node of the worker that will stream them.
  void first_touch_state();

  CappedConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  void merge_requeued_into_pool();
  /// Merges `entries` (sorted by label, ascending) into the pool,
  /// preserving the oldest-first bucket order (two-pointer merge).
  void merge_sorted_into_pool(
      std::span<const queueing::AgedPool::Bucket> entries);

  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;  // scratch, reused across rounds
  queueing::AgedPool merge_scratch_;
  // The arena must outlive everything allocated from it (bounded_ and
  // the ArenaBuffer scratch below), hence its position in this list.
  std::unique_ptr<Arena> arena_;  // config_.arena.enabled only
  ArenaBuffer<std::uint32_t> choice_scratch_;
  std::vector<queueing::AgedPool::Bucket> reverse_survivor_scratch_;
  std::map<std::uint64_t, std::uint64_t> requeue_;  // label → crashed count
  std::optional<queueing::BinTable> bounded_;
  std::optional<queueing::UnboundedBinTable> unbounded_;

  // Bin-major kernel scratch, reused across rounds. `counts_` doubles as
  // the scatter cursor array after the prefix sum into `starts_`.
  ArenaBuffer<std::uint32_t> counts_;         // n
  ArenaBuffer<std::uint32_t> starts_;         // n + 1 candidate offsets
  // Fused kernel scratch: throws are partitioned into contiguous bin-range
  // chunks sized so the cursor arrays and per-chunk bin state stay
  // cache-resident. Each chunk stream holds 16-bit chunk-local offsets in
  // bucket-major visit order with one sentinel per (bucket, chunk), so the
  // bucket of an entry is implied by its segment instead of stored.
  ArenaBuffer<std::uint16_t> part16_;         // local bin offsets + sentinels
  std::vector<std::uint32_t> chunk_counts_;   // throws per chunk
  std::vector<std::uint32_t> chunk_cursor_;   // partition write cursors
  ArenaBuffer<std::uint32_t> cand_bucket_;    // per candidate, bin-grouped
  // Parallel-partition scratch (shards > 1): throws staged per bin
  // range as (bin << 32 | bucket) records, slice-ordered so the final
  // per-range counting sorts see the global visit order.
  ArenaBuffer<std::uint64_t> staged_;         // nu staged records
  ArenaBuffer<std::uint32_t> staged_idx_;     // throw index (tracer only)
  std::vector<std::uint64_t> range_count_;    // shards × shards
  std::vector<std::uint64_t> range_cursor_;   // shards × shards
  std::vector<std::uint64_t> range_base_;     // shards + 1 staging bounds
  std::vector<std::uint64_t> bucket_labels_;  // flat copy of pool buckets
  std::vector<std::uint64_t> bucket_ends_;    // candidate-index boundaries
  std::vector<std::uint64_t> rejected_;       // shards × buckets
  std::vector<std::uint64_t> shard_accepted_;  // per shard
  std::vector<std::uint32_t> rank_scratch_;    // per throw idx (tracer only)
  std::vector<std::uint64_t> init_load_;       // per bin (tracer only)
  // Sharded delete-phase scratch.
  std::vector<std::uint8_t> delete_action_;    // per bin: none/serve/crash
  std::vector<std::uint32_t> delete_pos_;      // served queue position
  std::vector<std::uint64_t> deleted_label_;   // per bin, kNoLabel = none
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      shard_crashed_;                          // per shard: (bin, label)
  std::vector<std::int64_t> shard_load_delta_;  // per shard total_load fix
  std::unique_ptr<concurrency::ThreadPool> shard_pool_;  // shards > 1

  std::unique_ptr<control::Controller> controller_;  // config_.control on

  telemetry::PhaseTimers* timers_ = nullptr;
  telemetry::BallTracer* tracer_ = nullptr;
  telemetry::TimeSeries* timeseries_ = nullptr;
  WaitRecorder waits_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;

  // Fault-injection round state: set by begin_round_faults(), read by
  // every kernel. Null / false outside a faulted round, so unfaulted
  // rounds keep the lean fast paths.
  RoundFaultProvider* fault_plan_ = nullptr;
  BinChoiceSampler* bin_sampler_ = nullptr;
  bool faults_round_ = false;
  const std::uint8_t* fault_flags_ = nullptr;
  const std::uint32_t* fault_caps_ = nullptr;

  // Backpressure state (kShed / kDeferRetry).
  std::deque<DeferredBucket> deferred_;  // ready ascending; labels
                                         // ascending within a ready group
  std::vector<queueing::AgedPool::Bucket> readmit_scratch_;
  std::vector<queueing::AgedPool::Bucket> requeue_scratch_;
  std::uint64_t shed_total_ = 0;
  std::uint64_t deferred_total_ = 0;
};

static_assert(AllocationProcess<Capped>);

}  // namespace iba::core
