// HeteroCapped — CAPPED over *non-uniform* bins: per-bin buffer
// capacities c_i and an arbitrary bin-selection distribution, the
// natural generalization toward the paper's reference [6] (Berenbrink et
// al., "Balls into Non-uniform Bins").
//
// Semantics per round are unchanged: pool balls sample bins (now from a
// weighted distribution via an alias table), each bin accepts the oldest
// requests up to its own capacity, and every non-empty bin deletes its
// front ball. With equal capacities and uniform weights this is exactly
// CAPPED(c, λ) (asserted by the test suite under shared semantics).
//
// bench_hetero studies the question the homogeneous theory leaves open:
// for a fixed total buffer budget Σc_i, does the *distribution* of
// capacities matter, and can capacity-proportional routing compensate?
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "queueing/aged_pool.hpp"
#include "rng/alias.hpp"

namespace iba::core {

struct HeteroCappedConfig {
  std::vector<std::uint32_t> capacities;  ///< c_i per bin (all ≥ 1)
  std::vector<double> weights;  ///< bin-selection weights; empty = uniform
  std::uint64_t lambda_n = 0;   ///< new balls per round

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(capacities.size());
  }
  [[nodiscard]] std::uint64_t total_capacity() const noexcept;

  void validate() const;

  /// Homogeneous instance (for cross-checks against Capped).
  static HeteroCappedConfig uniform(std::uint32_t n, std::uint32_t c,
                                    std::uint64_t lambda_n);
};

/// CAPPED over heterogeneous bins. Deterministic given (config, engine).
class HeteroCapped {
 public:
  HeteroCapped(const HeteroCappedConfig& config, Engine engine);

  RoundMetrics step();

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(capacities_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return queues_[i].size();
  }
  [[nodiscard]] std::uint32_t capacity(std::uint32_t i) const noexcept {
    return capacities_[i];
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return total_load_;
  }
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  void reset_wait_stats() noexcept { waits_.reset(); }

  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }

 private:
  struct Queue {
    std::vector<std::uint64_t> labels;
    std::size_t head = 0;

    [[nodiscard]] std::size_t size() const noexcept {
      return labels.size() - head;
    }
  };

  std::vector<std::uint32_t> capacities_;
  std::uint64_t lambda_n_;
  rng::AliasTable selector_;
  bool uniform_selection_;
  Engine engine_;
  std::uint64_t round_ = 0;
  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;
  std::vector<Queue> queues_;
  std::uint64_t total_load_ = 0;
  WaitRecorder waits_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;
};

static_assert(AllocationProcess<HeteroCapped>);

}  // namespace iba::core
