// Stemann's collision protocol ("Parallel Balanced Allocations",
// SPAA'96) — the matching upper bound for the round/load trade-off of
// Adler et al. that the paper's related work cites.
//
// m balls each fix d random bins once. In every synchronous round, each
// unallocated ball sends a request to all its d bins; every bin that
// received at most `collision_bound` requests this round accepts them
// all; an accepted ball allocates itself to (the first of) its accepting
// bins and withdraws its other requests. For m = n, d = 2 and collision
// bound c ≥ 2, the protocol finishes in O(log log n) rounds w.h.p. with
// maximum load ≤ c · rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"

namespace iba::core {

struct CollisionResult {
  std::uint64_t rounds = 0;
  std::uint64_t max_load = 0;
  bool completed = false;
  std::vector<std::uint64_t> loads;
  std::vector<std::uint64_t> allocated_per_round;
};

/// Runs the collision protocol for m balls into n bins with d choices
/// per ball and the given per-round collision bound. Gives up (reporting
/// completed = false) after max_rounds.
[[nodiscard]] CollisionResult run_collision_protocol(
    std::uint32_t n, std::uint64_t m, std::uint32_t d,
    std::uint64_t collision_bound, Engine engine,
    std::uint64_t max_rounds = 1000);

}  // namespace iba::core
