// The infinite *sequential* reallocation process of Azar, Broder,
// Karlin, Upfal (SICOMP'99, §related work "Infinite Sequential
// Processes"), further analyzed by Cole et al. and Vöcking: n balls live
// in n bins; in every step one ball chosen uniformly at random is
// removed and re-inserted with the d-choice rule (observing current
// loads). After a polynomial warm-up the maximum load is
// ln ln n / ln d + O(1) w.h.p. for d ≥ 2 and Θ(log n / log log n) for
// d = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"

namespace iba::core {

/// The sequential d-choice reallocation chain. step() performs n single-
/// ball reallocations (one "round" of work comparable to the parallel
/// processes), so round-based runners and benches compose naturally.
class SequentialReallocation {
 public:
  /// Starts with the given assignment ball → bin (size = ball count).
  SequentialReallocation(std::vector<std::uint32_t> assignment,
                         std::uint32_t n, std::uint32_t d, Engine engine);

  /// Benign start: ball i in bin i mod n.
  static SequentialReallocation round_robin(std::uint32_t n, std::uint32_t d,
                                            Engine engine);

  /// Adversarial start: all n balls in bin 0.
  static SequentialReallocation adversarial(std::uint32_t n, std::uint32_t d,
                                            Engine engine);

  /// Reallocates n random balls (one unit of parallel-round work).
  RoundMetrics step();

  /// Reallocates exactly one ball.
  void step_one();

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t balls() const noexcept {
    return assignment_.size();
  }
  [[nodiscard]] std::uint64_t load(std::uint32_t bin) const noexcept {
    return loads_[bin];
  }
  [[nodiscard]] std::uint64_t max_load() const noexcept;

 private:
  std::uint32_t n_;
  std::uint32_t d_;
  Engine engine_;
  std::uint64_t round_ = 0;
  std::vector<std::uint32_t> assignment_;  ///< ball → bin
  std::vector<std::uint64_t> loads_;
};

static_assert(AllocationProcess<SequentialReallocation>);

}  // namespace iba::core
