#include "core/arena.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IBA_ARENA_HAVE_MMAP 1
#include <sys/mman.h>
#endif

#include "common/assert.hpp"

namespace iba::core {

namespace {

constexpr std::size_t kPageRound = std::size_t{2} << 20;  // 2 MiB

// Round mapped lengths up to the huge-page granule so MADV_HUGEPAGE can
// cover the whole block and neighboring blocks never share a granule.
std::size_t round_up_mapped(std::size_t bytes) noexcept {
  return (bytes + kPageRound - 1) & ~(kPageRound - 1);
}

}  // namespace

Arena::Arena(ArenaConfig config) : config_(config) {}

Arena::~Arena() {
  for (const Block& block : blocks_) {
    if (block.ptr == nullptr) {
      continue;
    }
#if defined(IBA_ARENA_HAVE_MMAP)
    if (block.mapped) {
      ::munmap(block.ptr, block.bytes);
      continue;
    }
#endif
    ::operator delete(block.ptr, std::align_val_t{64});
  }
}

bool Arena::mmap_supported() noexcept {
#if defined(IBA_ARENA_HAVE_MMAP)
  return true;
#else
  return false;
#endif
}

void* Arena::allocate(std::size_t bytes) {
  if (bytes == 0) {
    return nullptr;
  }
  ++allocation_count_;
  Block block;
#if defined(IBA_ARENA_HAVE_MMAP)
  if (config_.enabled && bytes >= kMmapThreshold) {
    const std::size_t mapped_len = round_up_mapped(bytes);
    void* mapping = ::mmap(nullptr, mapped_len, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapping != MAP_FAILED) {
      block = {mapping, mapped_len, true, false};
      mapped_bytes_ += mapped_len;
#if defined(MADV_HUGEPAGE)
      if (config_.huge_pages &&
          ::madvise(mapping, mapped_len, MADV_HUGEPAGE) == 0) {
        block.huge = true;
        huge_advised_bytes_ += mapped_len;
      }
#endif
    }
    // mmap failure falls through to the heap: graceful, not fatal.
  }
#endif
  if (block.ptr == nullptr) {
    block = {::operator new(bytes, std::align_val_t{64}), bytes, false,
             false};
    std::memset(block.ptr, 0, bytes);
  }
  blocks_.push_back(block);
  live_bytes_ += block.bytes;
  return block.ptr;
}

void Arena::deallocate(void* ptr) noexcept {
  if (ptr == nullptr) {
    return;
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].ptr != ptr) {
      continue;
    }
    const Block block = blocks_[i];
    blocks_[i] = blocks_.back();
    blocks_.pop_back();
    live_bytes_ -= block.bytes;
#if defined(IBA_ARENA_HAVE_MMAP)
    if (block.mapped) {
      mapped_bytes_ -= block.bytes;
      if (block.huge) {
        huge_advised_bytes_ -= block.bytes;
      }
      ::munmap(block.ptr, block.bytes);
      return;
    }
#endif
    ::operator delete(block.ptr, std::align_val_t{64});
    return;
  }
  IBA_ASSERT(false && "Arena::deallocate: unknown block");
}

}  // namespace iba::core
