#include "core/adler_fifo.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

void AdlerFifoConfig::validate() const {
  IBA_EXPECT(n > 0, "AdlerFifoConfig: n must be positive");
  IBA_EXPECT(d >= 1, "AdlerFifoConfig: d must be at least 1");
}

AdlerFifo::AdlerFifo(const AdlerFifoConfig& config, Engine engine)
    : config_(config), engine_(engine), queues_(config.n) {
  config_.validate();
}

std::uint32_t AdlerFifo::allocate_ball() {
  if (!free_ids_.empty()) {
    const std::uint32_t id = free_ids_.back();
    free_ids_.pop_back();
    balls_[id] = BallRecord{};
    return id;
  }
  balls_.emplace_back();
  return static_cast<std::uint32_t>(balls_.size() - 1);
}

void AdlerFifo::release_copy(std::uint32_t id) {
  BallRecord& ball = balls_[id];
  IBA_ASSERT(ball.copies_left > 0);
  if (--ball.copies_left == 0) free_ids_.push_back(id);
}

RoundMetrics AdlerFifo::step() {
  ++round_;
  RoundMetrics m;
  m.round = round_;
  m.generated = config_.m;
  m.thrown = config_.m;

  // Arrivals: every new ball enqueues d copies in random bins.
  for (std::uint64_t k = 0; k < config_.m; ++k) {
    const std::uint32_t id = allocate_ball();
    balls_[id].birth = round_;
    balls_[id].copies_left = config_.d;
    for (std::uint32_t copy = 0; copy < config_.d; ++copy) {
      queues_[rng::bounded32(engine_, config_.n)].items.push_back(id);
    }
  }
  in_flight_ += config_.m;
  m.accepted = config_.m;

  // Service: each bin pops tombstoned (already served) copies for free,
  // then serves its first live ball, if any.
  for (Queue& queue : queues_) {
    while (queue.head < queue.items.size() &&
           balls_[queue.items[queue.head]].served) {
      release_copy(queue.items[queue.head]);
      ++queue.head;
    }
    if (queue.head >= queue.items.size()) {
      if (queue.head > 0) {  // fully drained: reclaim storage
        queue.items.clear();
        queue.head = 0;
      }
      continue;
    }
    const std::uint32_t id = queue.items[queue.head];
    ++queue.head;
    BallRecord& ball = balls_[id];
    ball.served = true;
    const std::uint64_t wait = round_ - ball.birth;
    release_copy(id);
    waits_.record(wait);
    --in_flight_;
    ++m.deleted;
    ++m.wait_count;
    m.wait_sum += static_cast<double>(wait);
    if (wait > m.wait_max) m.wait_max = wait;
    if (queue.head >= 64 && queue.head * 2 >= queue.items.size()) {
      queue.items.erase(queue.items.begin(),
                        queue.items.begin() +
                            static_cast<std::ptrdiff_t>(queue.head));
      queue.head = 0;
    }
  }

  m.pool_size = 0;
  m.total_load = in_flight_;
  std::uint64_t max_pending = 0;
  std::uint32_t empty = 0;
  for (const Queue& queue : queues_) {
    const std::uint64_t pending = queue.items.size() - queue.head;
    max_pending = std::max(max_pending, pending);
    if (pending == 0) ++empty;
  }
  m.max_load = max_pending;
  m.empty_bins = empty;
  return m;
}

}  // namespace iba::core
