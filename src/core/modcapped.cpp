#include "core/modcapped.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

std::uint64_t ModCappedConfig::m_star_default() const {
  const double dn = static_cast<double>(n);
  const double log_term = std::log(1.0 / (1.0 - lambda()));
  const double c = static_cast<double>(capacity);
  // Section III (c = 1): m* = ln(1/(1−λ))·n + 2n;
  // Section IV (general): m* = (2/c)·ln(1/(1−λ))·n + 6·c·n.
  const double value = capacity == 1 ? log_term * dn + 2 * dn
                                     : 2.0 / c * log_term * dn + 6 * c * dn;
  return static_cast<std::uint64_t>(std::ceil(value));
}

void ModCappedConfig::validate() const {
  IBA_EXPECT(n > 0, "ModCappedConfig: n must be positive");
  IBA_EXPECT(capacity > 0, "ModCappedConfig: capacity must be positive");
  IBA_EXPECT(capacity != CappedConfig::kInfiniteCapacity,
             "ModCappedConfig: capacity must be finite");
  IBA_EXPECT(lambda_n < n,
             "ModCappedConfig: requires lambda <= 1 - 1/n (lambda_n < n)");
}

ModCapped::ModCapped(const ModCappedConfig& config, Engine engine)
    : config_(config),
      m_star_(config.m_star != 0 ? config.m_star : config.m_star_default()),
      engine_(engine),
      drain_(config.n, config.capacity),
      fill_(config.n, config.capacity) {
  config_.validate();
}

std::uint32_t ModCapped::drain_capacity() const noexcept {
  // c_j(t) for j = ⌊t/c⌋, t ∈ I_j: (j+1)·c − t  (Eq. (5)).
  const std::uint64_t c = config_.capacity;
  const std::uint64_t j = round_ / c;
  return static_cast<std::uint32_t>((j + 1) * c - round_);
}

std::uint32_t ModCapped::fill_capacity() const noexcept {
  // c_{j+1}(t) for t ∈ I_j = I_{(j+1)−1}: t − j·c  (Eq. (5)).
  const std::uint64_t c = config_.capacity;
  const std::uint64_t j = round_ / c;
  return static_cast<std::uint32_t>(round_ - j * c);
}

RoundMetrics ModCapped::step() {
  const std::uint64_t nu = balls_to_throw();
  choice_scratch_.resize(nu);
  for (auto& choice : choice_scratch_) {
    choice = rng::bounded32(engine_, config_.n);
  }
  return step_with_choices(choice_scratch_);
}

RoundMetrics ModCapped::step_with_choices(
    std::span<const std::uint32_t> choices) {
  IBA_EXPECT(choices.size() == balls_to_throw(),
             "ModCapped: need exactly one bin choice per thrown ball");
  const std::uint64_t generated = balls_to_throw() - pool_.total();
  ++round_;

  // Phase boundary: at t ≡ 0 (mod c) buffer ⌊t/c⌋ − 1 just finished its
  // drain phase (empty by construction); the former filling buffer starts
  // draining and a fresh filling buffer opens.
  if (round_ % config_.capacity == 0) {
    IBA_ASSERT(drain_.total_load() == 0);
    std::swap(drain_, fill_);
    fill_.clear();
  }

  pool_.add(round_, generated);
  generated_total_ += generated;

  RoundMetrics m;
  m.round = round_;
  m.generated = generated;
  m.thrown = pool_.total();

  const std::uint32_t cap_drain = drain_capacity();
  const std::uint32_t cap_fill = fill_capacity();

  // Pass 1: every ball tries its preferred buffer. Preferences alternate
  // by throw index, giving each active buffer ⌈ν/2⌉ / ⌊ν/2⌋ of the balls.
  survivors_.clear();
  overflow_scratch_.clear();
  std::size_t idx = 0;
  for (const auto& bucket : pool_.buckets()) {
    for (std::uint64_t k = 0; k < bucket.count; ++k) {
      const std::uint32_t bin = choices[idx];
      const bool prefers_drain = (idx % 2) == 0;
      ++idx;
      queueing::BinTable& preferred = prefers_drain ? drain_ : fill_;
      const std::uint32_t cap = prefers_drain ? cap_drain : cap_fill;
      if (preferred.load(bin) < cap) {
        preferred.push(bin, bucket.label);
        ++m.accepted;
      } else {
        overflow_scratch_.push_back({bin, bucket.label});
      }
    }
  }
  IBA_ASSERT(idx == choices.size());

  // Pass 2: overflowing balls take any remaining room (necessarily in
  // the non-preferred buffer — loads only grow during allocation), which
  // maximizes satisfied preferences without sacrificing acceptances.
  for (const Overflow& ball : overflow_scratch_) {
    if (drain_.load(ball.bin) < cap_drain) {
      drain_.push(ball.bin, ball.label);
      ++m.accepted;
    } else if (fill_.load(ball.bin) < cap_fill) {
      fill_.push(ball.bin, ball.label);
      ++m.accepted;
    } else {
      survivors_.add(ball.label, 1);  // overflow order is oldest-first
    }
  }
  pool_.swap(survivors_);

  // Deletion: only the draining buffer serves, one ball per bin.
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    if (drain_.load(bin) == 0) continue;
    const std::uint64_t label = drain_.pop_front(bin);
    const std::uint64_t wait = round_ - label;
    waits_.record(wait);
    ++m.deleted;
    ++m.wait_count;
    m.wait_sum += static_cast<double>(wait);
    if (wait > m.wait_max) m.wait_max = wait;
  }
  deleted_total_ += m.deleted;

  m.pool_size = pool_.total();
  m.total_load = total_load();
  std::uint64_t max_load = 0;
  std::uint32_t empty = 0;
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    const std::uint64_t l = load(bin);
    max_load = std::max(max_load, l);
    if (l == 0) ++empty;
  }
  m.max_load = max_load;
  m.empty_bins = empty;
  return m;
}

}  // namespace iba::core
