#include "core/greedy.hpp"

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

void BatchGreedyConfig::validate() const {
  IBA_EXPECT(n > 0, "BatchGreedyConfig: n must be positive");
  IBA_EXPECT(d >= 1, "BatchGreedyConfig: d must be at least 1");
  IBA_EXPECT(lambda_n <= n, "BatchGreedyConfig: lambda must be at most 1");
}

BatchGreedy::BatchGreedy(const BatchGreedyConfig& config, Engine engine)
    : config_(config), engine_(engine), bins_(config.n) {
  config_.validate();
  load_snapshot_.resize(config_.n);
}

RoundMetrics BatchGreedy::step() {
  ++round_;
  RoundMetrics m;
  m.round = round_;
  m.generated = config_.lambda_n;
  m.thrown = config_.lambda_n;

  // The batch measures loads as of the beginning of the round.
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    load_snapshot_[bin] = bins_.load(bin);
  }

  for (std::uint64_t ball = 0; ball < config_.lambda_n; ++ball) {
    std::uint32_t best = rng::bounded32(engine_, config_.n);
    // Ties among sampled bins are broken uniformly: sampling with
    // replacement and keeping the first minimum is equivalent because
    // the samples themselves are exchangeable.
    for (std::uint32_t choice = 1; choice < config_.d; ++choice) {
      const std::uint32_t candidate = rng::bounded32(engine_, config_.n);
      if (load_snapshot_[candidate] < load_snapshot_[best]) best = candidate;
    }
    bins_.push(best, round_);
    ++m.accepted;
  }

  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    if (bins_.load(bin) == 0) continue;
    const std::uint64_t label = bins_.pop_front(bin);
    const std::uint64_t wait = round_ - label;
    waits_.record(wait);
    ++m.deleted;
    ++m.wait_count;
    m.wait_sum += static_cast<double>(wait);
    if (wait > m.wait_max) m.wait_max = wait;
  }

  m.pool_size = 0;  // GREEDY[d] has no pool: every ball is queued at once
  m.total_load = bins_.total_load();
  m.max_load = bins_.max_load();
  m.empty_bins = bins_.empty_bins();
  return m;
}

}  // namespace iba::core
