// OracleCapped — an intentionally naive, explicit-ball reference
// implementation of CAPPED(c, λ), written as a direct transcription of
// Algorithm 1 with none of the optimized simulator's shortcuts.
//
// Used by the test suite to cross-check the optimized Capped process
// trajectory-for-trajectory under shared randomness, and by the
// microbenchmarks as the ablation baseline for the age-bucketed pool.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"

namespace iba::core {

/// Explicit-ball CAPPED(c, λ). Every ball is an individual record; each
/// round gathers per-bin request lists and sorts them by age, exactly as
/// the paper's prose describes. O(m log m) per round.
class OracleCapped {
 public:
  OracleCapped(const CappedConfig& config, Engine engine);

  RoundMetrics step();
  RoundMetrics step_with_choices(std::span<const std::uint32_t> choices);

  [[nodiscard]] std::uint64_t balls_to_throw() const noexcept {
    return pool_.size() + config_.lambda_n;
  }
  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.size();
  }
  [[nodiscard]] std::uint64_t load(std::uint32_t bin) const noexcept {
    return bins_[bin].size();
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept;
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }

 private:
  struct Ball {
    std::uint64_t label;  ///< generation round
  };

  CappedConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  std::vector<Ball> pool_;                   // kept sorted oldest-first
  std::vector<std::deque<std::uint64_t>> bins_;  // FIFO queues of labels
  WaitRecorder waits_;
};

}  // namespace iba::core
