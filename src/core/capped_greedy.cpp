#include "core/capped_greedy.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

void CappedGreedyConfig::validate() const {
  IBA_EXPECT(n > 0, "CappedGreedyConfig: n must be positive");
  IBA_EXPECT(capacity > 0, "CappedGreedyConfig: capacity must be positive");
  IBA_EXPECT(capacity != CappedConfig::kInfiniteCapacity,
             "CappedGreedyConfig: use BatchGreedy for infinite capacity");
  IBA_EXPECT(d >= 1, "CappedGreedyConfig: d must be at least 1");
  IBA_EXPECT(lambda_n <= n, "CappedGreedyConfig: lambda must be at most 1");
}

CappedGreedy::CappedGreedy(const CappedGreedyConfig& config, Engine engine)
    : config_(config),
      engine_(engine),
      bins_(config.n, config.capacity) {
  config_.validate();
  load_snapshot_.resize(config_.n);
}

RoundMetrics CappedGreedy::step() {
  ++round_;
  pool_.add(round_, config_.lambda_n);
  generated_total_ += config_.lambda_n;

  RoundMetrics m;
  m.round = round_;
  m.generated = config_.lambda_n;
  m.thrown = pool_.total();

  // Balls pick the least-loaded of d sampled bins by the start-of-round
  // loads (the batch does not observe its own allocations).
  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    load_snapshot_[bin] = static_cast<std::uint32_t>(bins_.load(bin));
  }

  // Oldest-first acceptance at the chosen bin, as in CAPPED.
  survivors_.clear();
  const std::uint32_t cap = config_.capacity;
  for (const auto& bucket : pool_.buckets()) {
    for (std::uint64_t k = 0; k < bucket.count; ++k) {
      std::uint32_t best = rng::bounded32(engine_, config_.n);
      for (std::uint32_t choice = 1; choice < config_.d; ++choice) {
        const std::uint32_t candidate = rng::bounded32(engine_, config_.n);
        if (load_snapshot_[candidate] < load_snapshot_[best]) {
          best = candidate;
        }
      }
      if (bins_.load(best) < cap) {
        bins_.push(best, bucket.label);
        ++m.accepted;
      } else {
        survivors_.add(bucket.label, 1);
      }
    }
  }
  pool_.swap(survivors_);

  for (std::uint32_t bin = 0; bin < config_.n; ++bin) {
    if (bins_.load(bin) == 0) continue;
    const std::uint64_t label = bins_.pop_front(bin);
    const std::uint64_t wait = round_ - label;
    waits_.record(wait);
    ++m.deleted;
    ++m.wait_count;
    m.wait_sum += static_cast<double>(wait);
    if (wait > m.wait_max) m.wait_max = wait;
  }
  deleted_total_ += m.deleted;

  m.pool_size = pool_.total();
  m.total_load = bins_.total_load();
  m.max_load = bins_.max_load();
  m.empty_bins = bins_.empty_bins();
  return m;
}

}  // namespace iba::core
