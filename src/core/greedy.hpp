// Batch GREEDY[d] with leaky bins — the baseline process of Berenbrink,
// Friedetzky, Kling, Mallmann-Trenn, Nagel, Wastell [PODC'16 /
// Algorithmica'18] that the paper's Section I-B compares against.
//
// Per round: λn new balls arrive; each ball samples d bins independently
// and uniformly at random and commits to the one with the smallest load
// *at the beginning of the round* (the batch does not observe itself;
// ties broken uniformly among the sampled minima); bins have unbounded
// FIFO queues; at the end of the round every non-empty bin deletes its
// front ball. d = 1 is the 1-choice process (≡ CAPPED(∞, λ)); d = 2 is
// the 2-choice process whose waiting time is Θ(log n) for constant λ —
// the bound CAPPED improves to log log n + O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "queueing/unbounded_bin_table.hpp"

namespace iba::core {

struct BatchGreedyConfig {
  std::uint32_t n = 0;
  std::uint32_t d = 1;         ///< choices per ball
  std::uint64_t lambda_n = 0;  ///< λ·n, new balls per round

  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  void validate() const;
};

/// The batch GREEDY[d] process. Deterministic given (config, engine).
class BatchGreedy {
 public:
  BatchGreedy(const BatchGreedyConfig& config, Engine engine);

  RoundMetrics step();

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t d() const noexcept { return config_.d; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return bins_.load(i);
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return bins_.total_load();
  }
  [[nodiscard]] std::uint64_t max_load() const noexcept {
    return bins_.max_load();
  }
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  void reset_wait_stats() noexcept { waits_.reset(); }

 private:
  BatchGreedyConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  queueing::UnboundedBinTable bins_;
  std::vector<std::uint64_t> load_snapshot_;
  WaitRecorder waits_;
};

static_assert(AllocationProcess<BatchGreedy>);

}  // namespace iba::core
