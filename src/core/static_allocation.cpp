#include "core/static_allocation.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

namespace {

StaticAllocationResult summarize(std::vector<std::uint64_t> loads,
                                 std::uint64_t m) {
  StaticAllocationResult result;
  result.max_load = *std::max_element(loads.begin(), loads.end());
  result.average_load =
      static_cast<double>(m) / static_cast<double>(loads.size());
  result.empty_bins = static_cast<std::uint32_t>(
      std::count(loads.begin(), loads.end(), 0u));
  result.loads = std::move(loads);
  return result;
}

}  // namespace

StaticAllocationResult one_choice(std::uint32_t n, std::uint64_t m,
                                  Engine engine) {
  IBA_EXPECT(n > 0, "one_choice: n must be positive");
  std::vector<std::uint64_t> loads(n, 0);
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    ++loads[rng::bounded32(engine, n)];
  }
  return summarize(std::move(loads), m);
}

StaticAllocationResult greedy_d(std::uint32_t n, std::uint64_t m,
                                std::uint32_t d, Engine engine) {
  IBA_EXPECT(n > 0, "greedy_d: n must be positive");
  IBA_EXPECT(d >= 1, "greedy_d: d must be at least 1");
  std::vector<std::uint64_t> loads(n, 0);
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    std::uint32_t best = rng::bounded32(engine, n);
    for (std::uint32_t choice = 1; choice < d; ++choice) {
      const std::uint32_t candidate = rng::bounded32(engine, n);
      if (loads[candidate] < loads[best]) best = candidate;
    }
    ++loads[best];
  }
  return summarize(std::move(loads), m);
}

StaticAllocationResult always_go_left(std::uint32_t n, std::uint64_t m,
                                      std::uint32_t d, Engine engine) {
  IBA_EXPECT(n > 0, "always_go_left: n must be positive");
  IBA_EXPECT(d >= 2, "always_go_left: d must be at least 2");
  IBA_EXPECT(d <= n, "always_go_left: needs at least one bin per group");
  std::vector<std::uint64_t> loads(n, 0);
  // Group g owns the index range [g·n/d, (g+1)·n/d) (last group absorbs
  // the remainder).
  const std::uint32_t base = n / d;
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    std::uint32_t best = 0;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t group = 0; group < d; ++group) {
      const std::uint32_t lo = group * base;
      const std::uint32_t hi = group + 1 == d ? n : (group + 1) * base;
      const std::uint32_t candidate =
          lo + rng::bounded32(engine, hi - lo);
      // Strict '<' breaks ties toward the earlier (left) group.
      if (loads[candidate] < best_load) {
        best_load = loads[candidate];
        best = candidate;
      }
    }
    ++loads[best];
  }
  return summarize(std::move(loads), m);
}

std::vector<std::uint64_t> load_histogram(
    const std::vector<std::uint64_t>& loads) {
  std::uint64_t max_load = 0;
  for (std::uint64_t l : loads) max_load = std::max(max_load, l);
  std::vector<std::uint64_t> hist(max_load + 1, 0);
  for (std::uint64_t l : loads) ++hist[l];
  return hist;
}

}  // namespace iba::core
