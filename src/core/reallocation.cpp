#include "core/reallocation.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

SequentialReallocation::SequentialReallocation(
    std::vector<std::uint32_t> assignment, std::uint32_t n, std::uint32_t d,
    Engine engine)
    : n_(n), d_(d), engine_(engine), assignment_(std::move(assignment)) {
  IBA_EXPECT(n > 0, "SequentialReallocation: n must be positive");
  IBA_EXPECT(d >= 1, "SequentialReallocation: d must be at least 1");
  IBA_EXPECT(!assignment_.empty(),
             "SequentialReallocation: needs at least one ball");
  loads_.assign(n, 0);
  for (const std::uint32_t bin : assignment_) {
    IBA_EXPECT(bin < n, "SequentialReallocation: assignment out of range");
    ++loads_[bin];
  }
}

SequentialReallocation SequentialReallocation::round_robin(std::uint32_t n,
                                                           std::uint32_t d,
                                                           Engine engine) {
  std::vector<std::uint32_t> assignment(n);
  for (std::uint32_t i = 0; i < n; ++i) assignment[i] = i;
  return {std::move(assignment), n, d, engine};
}

SequentialReallocation SequentialReallocation::adversarial(std::uint32_t n,
                                                           std::uint32_t d,
                                                           Engine engine) {
  return {std::vector<std::uint32_t>(n, 0), n, d, engine};
}

void SequentialReallocation::step_one() {
  const auto ball = static_cast<std::size_t>(
      rng::bounded(engine_, assignment_.size()));
  --loads_[assignment_[ball]];
  std::uint32_t best = rng::bounded32(engine_, n_);
  for (std::uint32_t j = 1; j < d_; ++j) {
    const std::uint32_t candidate = rng::bounded32(engine_, n_);
    if (loads_[candidate] < loads_[best]) best = candidate;
  }
  ++loads_[best];
  assignment_[ball] = best;
}

RoundMetrics SequentialReallocation::step() {
  ++round_;
  for (std::uint32_t i = 0; i < n_; ++i) step_one();
  RoundMetrics m;
  m.round = round_;
  m.thrown = n_;
  m.accepted = n_;
  m.deleted = n_;
  m.total_load = assignment_.size();
  m.max_load = max_load();
  m.empty_bins = static_cast<std::uint32_t>(
      std::count(loads_.begin(), loads_.end(), 0u));
  return m;
}

std::uint64_t SequentialReallocation::max_load() const noexcept {
  return *std::max_element(loads_.begin(), loads_.end());
}

}  // namespace iba::core
