// Mitzenmacher's supermarket model ("The Power of Two Choices in
// Randomized Load Balancing", IEEE TPDS'01) — the paper's related-work
// reference [16], in continuous time: customers arrive as a Poisson
// process of rate λn, sample d queues uniformly at random, join a
// shortest one, and each busy server completes work at rate 1
// (exponential service, FIFO).
//
// Simulated exactly with the Gillespie method: the next event is an
// exponential race between the arrival stream (rate λn) and the busy
// servers (rate = #busy), so no event heap is needed. The classical
// fixed point validates the implementation: the steady-state fraction of
// queues with length ≥ k is λ^((d^k − 1)/(d − 1)) — geometric λ^k for
// d = 1 (M/M/1) and doubly exponential for d = 2.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"

namespace iba::core {

struct SupermarketConfig {
  std::uint32_t n = 0;   ///< servers
  std::uint32_t d = 2;   ///< choices per customer
  double lambda = 0.0;   ///< arrival rate per server, in (0, 1)

  void validate() const;
};

/// The continuous-time supermarket system. Deterministic given
/// (config, engine).
class Supermarket {
 public:
  Supermarket(const SupermarketConfig& config, Engine engine);

  /// Advances simulated time by `duration` (processing every arrival and
  /// departure inside). Returns the number of events processed.
  std::uint64_t advance(double duration);

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t customers_in_system() const noexcept {
    return in_system_;
  }
  [[nodiscard]] std::uint64_t queue_length(std::uint32_t i) const noexcept {
    return queues_[i].size();
  }

  /// Fraction of queues with length ≥ k (the fixed-point observable).
  [[nodiscard]] double tail_fraction(std::uint64_t k) const noexcept;

  /// Sojourn-time statistics of departed customers (arrival → departure).
  [[nodiscard]] const stats::OnlineMoments& sojourn() const noexcept {
    return sojourn_;
  }
  void reset_sojourn_stats() noexcept { sojourn_.reset(); }

  /// The theoretical steady-state tail: λ^((d^k − 1)/(d − 1)).
  [[nodiscard]] static double fixed_point_tail(double lambda, std::uint32_t d,
                                               std::uint64_t k);

 private:
  void arrival();
  void departure();

  SupermarketConfig config_;
  Engine engine_;
  double now_ = 0.0;
  std::vector<std::deque<double>> queues_;  ///< arrival times, FIFO
  std::vector<std::uint32_t> busy_;         ///< ids of non-empty queues
  std::vector<std::uint32_t> busy_slot_;    ///< queue id → index in busy_
  std::uint64_t in_system_ = 0;
  stats::OnlineMoments sojourn_;
};

}  // namespace iba::core
