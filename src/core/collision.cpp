#include "core/collision.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

CollisionResult run_collision_protocol(std::uint32_t n, std::uint64_t m,
                                       std::uint32_t d,
                                       std::uint64_t collision_bound,
                                       Engine engine,
                                       std::uint64_t max_rounds) {
  IBA_EXPECT(n > 0, "collision: n must be positive");
  IBA_EXPECT(d >= 1, "collision: d must be at least 1");
  IBA_EXPECT(collision_bound >= 1,
             "collision: collision bound must be at least 1");

  CollisionResult result;
  result.loads.assign(n, 0);

  // Each ball's d bin choices are fixed up front (the protocol never
  // re-randomizes).
  std::vector<std::uint32_t> choices(m * d);
  for (auto& choice : choices) choice = rng::bounded32(engine, n);

  std::vector<std::uint32_t> unallocated(m);
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    unallocated[static_cast<std::size_t>(ball)] =
        static_cast<std::uint32_t>(ball);
  }

  std::vector<std::uint64_t> requests(n);
  while (!unallocated.empty() && result.rounds < max_rounds) {
    ++result.rounds;
    std::fill(requests.begin(), requests.end(), 0);
    for (const std::uint32_t ball : unallocated) {
      for (std::uint32_t j = 0; j < d; ++j) {
        ++requests[choices[static_cast<std::size_t>(ball) * d + j]];
      }
    }

    std::vector<std::uint32_t> still_waiting;
    still_waiting.reserve(unallocated.size());
    std::uint64_t allocated_this_round = 0;
    for (const std::uint32_t ball : unallocated) {
      bool placed = false;
      for (std::uint32_t j = 0; j < d && !placed; ++j) {
        const std::uint32_t bin =
            choices[static_cast<std::size_t>(ball) * d + j];
        if (requests[bin] <= collision_bound) {
          ++result.loads[bin];
          placed = true;
          ++allocated_this_round;
        }
      }
      if (!placed) still_waiting.push_back(ball);
    }
    result.allocated_per_round.push_back(allocated_this_round);
    unallocated.swap(still_waiting);
  }

  result.completed = unallocated.empty();
  result.max_load =
      *std::max_element(result.loads.begin(), result.loads.end());
  return result;
}

}  // namespace iba::core
