// Model-variation policies for CAPPED(c, λ) — the paper's footnote-2
// generalization (stochastic arrivals) and the ablation axes DESIGN.md
// §7 calls out (deletion discipline, acceptance order, bin failures).
// Defaults reproduce the paper's process exactly.
#pragma once

#include <cstdint>
#include <string_view>

namespace iba::core {

/// How many balls arrive per round.
enum class ArrivalModel : std::uint8_t {
  kDeterministic,  ///< exactly λn (the paper's model)
  kBinomial,       ///< Binomial(n, λ): n generators firing w.p. λ
                   ///< (Berenbrink–Czumaj–Friedetzky–Vvedenskaya, SPAA'00)
  kPoisson,        ///< Poisson(λn): Mitzenmacher's arrival stream
};

/// Which stored ball a non-empty bin deletes at the end of a round.
enum class DeletionDiscipline : std::uint8_t {
  kFifo,     ///< the ball allocated first (the paper's rule)
  kLifo,     ///< the ball allocated last
  kUniform,  ///< a uniformly random stored ball
};

/// Which competing balls a bin prefers when over-requested.
enum class AcceptanceOrder : std::uint8_t {
  kOldestFirst,    ///< prefer balls of higher age (the paper's rule)
  kYoungestFirst,  ///< adversarial inversion — starves old balls
};

/// What a failing bin does in the round it fails.
enum class FailureMode : std::uint8_t {
  kSkipService,   ///< hiccup: the bin simply serves nothing this round
  kCrashRequeue,  ///< crash: the bin loses its buffer; the stored balls
                  ///< return to the pool (ages preserved) and retry
};

/// What happens to arrivals when the pool is at its configured bound
/// (graceful degradation under overload/faults — docs/ROBUSTNESS.md).
enum class BackpressureMode : std::uint8_t {
  kNone,        ///< unbounded pool (the paper's model)
  kShed,        ///< arrivals beyond the bound are dropped and counted
  kDeferRetry,  ///< arrivals beyond the bound wait out a deterministic
                ///< backoff and retry admission, oldest first
};

/// How a round's hot path is executed. Both kernels realize the same
/// process — byte-identical metrics, waits, snapshots and traces for the
/// same seed (tests/kernel_differential_test.cpp) — they differ only in
/// memory-access order and parallelizability. See docs/PERFORMANCE.md.
enum class RoundKernel : std::uint8_t {
  kScalar,    ///< ball-at-a-time: one random bin access per throw
  kBinMajor,  ///< batched: counting-sort throws by bin, then accept in
              ///< one cache-linear pass over bins; shardable
};

[[nodiscard]] constexpr std::string_view to_string(ArrivalModel m) noexcept {
  switch (m) {
    case ArrivalModel::kDeterministic: return "deterministic";
    case ArrivalModel::kBinomial: return "binomial";
    case ArrivalModel::kPoisson: return "poisson";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(
    DeletionDiscipline d) noexcept {
  switch (d) {
    case DeletionDiscipline::kFifo: return "fifo";
    case DeletionDiscipline::kLifo: return "lifo";
    case DeletionDiscipline::kUniform: return "uniform";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(
    AcceptanceOrder a) noexcept {
  switch (a) {
    case AcceptanceOrder::kOldestFirst: return "oldest-first";
    case AcceptanceOrder::kYoungestFirst: return "youngest-first";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(FailureMode f) noexcept {
  switch (f) {
    case FailureMode::kSkipService: return "skip-service";
    case FailureMode::kCrashRequeue: return "crash-requeue";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(
    BackpressureMode b) noexcept {
  switch (b) {
    case BackpressureMode::kNone: return "none";
    case BackpressureMode::kShed: return "shed";
    case BackpressureMode::kDeferRetry: return "defer";
  }
  return "?";
}

/// Parses the --backpressure flag vocabulary; false on unknown names.
[[nodiscard]] constexpr bool backpressure_from_string(
    std::string_view name, BackpressureMode& out) noexcept {
  if (name == "none") {
    out = BackpressureMode::kNone;
    return true;
  }
  if (name == "shed") {
    out = BackpressureMode::kShed;
    return true;
  }
  if (name == "defer" || name == "defer-retry") {
    out = BackpressureMode::kDeferRetry;
    return true;
  }
  return false;
}

[[nodiscard]] constexpr std::string_view to_string(RoundKernel k) noexcept {
  switch (k) {
    case RoundKernel::kScalar: return "scalar";
    case RoundKernel::kBinMajor: return "bin-major";
  }
  return "?";
}

/// Parses the --kernel flag vocabulary; returns false on unknown names.
[[nodiscard]] constexpr bool kernel_from_string(std::string_view name,
                                                RoundKernel& out) noexcept {
  if (name == "scalar") {
    out = RoundKernel::kScalar;
    return true;
  }
  if (name == "bin-major" || name == "binmajor") {
    out = RoundKernel::kBinMajor;
    return true;
  }
  return false;
}

}  // namespace iba::core
