#include "core/becchetti.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

RepeatedBallsIntoBins::RepeatedBallsIntoBins(
    std::vector<std::uint64_t> initial_loads, Engine engine)
    : loads_(std::move(initial_loads)), engine_(engine) {
  IBA_EXPECT(!loads_.empty(), "RepeatedBallsIntoBins: needs at least one bin");
  balls_ = std::accumulate(loads_.begin(), loads_.end(), std::uint64_t{0});
}

RepeatedBallsIntoBins RepeatedBallsIntoBins::adversarial(std::uint32_t n,
                                                         Engine engine) {
  IBA_EXPECT(n > 0, "RepeatedBallsIntoBins: n must be positive");
  std::vector<std::uint64_t> loads(n, 0);
  loads[0] = n;
  return {std::move(loads), engine};
}

RepeatedBallsIntoBins RepeatedBallsIntoBins::uniform(std::uint32_t n,
                                                     Engine engine) {
  IBA_EXPECT(n > 0, "RepeatedBallsIntoBins: n must be positive");
  return {std::vector<std::uint64_t>(n, 1), engine};
}

RoundMetrics RepeatedBallsIntoBins::step() {
  ++round_;
  RoundMetrics m;
  m.round = round_;

  // All non-empty bins release one ball simultaneously...
  std::uint64_t released = 0;
  for (auto& load : loads_) {
    if (load > 0) {
      --load;
      ++released;
    }
  }
  // ...and the released balls are re-thrown uniformly at random.
  const auto n = static_cast<std::uint32_t>(loads_.size());
  for (std::uint64_t ball = 0; ball < released; ++ball) {
    ++loads_[rng::bounded32(engine_, n)];
  }

  m.thrown = released;
  m.accepted = released;
  m.deleted = released;
  m.total_load = balls_;
  m.max_load = max_load();
  m.empty_bins = static_cast<std::uint32_t>(
      std::count(loads_.begin(), loads_.end(), 0u));
  return m;
}

std::uint64_t RepeatedBallsIntoBins::max_load() const noexcept {
  return *std::max_element(loads_.begin(), loads_.end());
}

}  // namespace iba::core
