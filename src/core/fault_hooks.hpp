// Fault-injection hook interface between the round kernels and the
// fault subsystem (src/fault/). core cannot depend on fault (fault's
// InvariantAuditor inspects core::Capped), so Capped consumes faults
// through this minimal per-round view and fault::FaultPlan implements it.
//
// Contract (what keeps scalar / fused / sharded byte-identical):
//  * begin_round() is called exactly once per round, before the round's
//    first allocation-engine draw. Any randomness the provider needs
//    must come from its own stream — it must never touch the process
//    engine.
//  * flags() / effective_capacity() are dense n-element arrays, constant
//    for the duration of the round. Every kernel reads them the same
//    way: acceptance bounds load by effective_capacity()[bin] instead of
//    c, and the delete phase consults flags()[bin] *before* drawing the
//    per-bin failure coin, so the engine consumption of faulted rounds
//    is identical across kernels and shard counts.
#pragma once

#include <cstdint>
#include <functional>

namespace iba::core {

/// Per-bin fault flags for one round (bitmask).
struct FaultFlags {
  /// The bin serves nothing this round (down, or a straggler's off-beat).
  static constexpr std::uint8_t kNoServe = 1u << 0;
  /// The bin lost its state this round: the delete phase drains its
  /// buffer back into the pool (labels preserved). Implies kNoServe.
  static constexpr std::uint8_t kDrain = 1u << 1;
};

/// One round's worth of fault decisions, recomputed by begin_round().
class RoundFaultProvider {
 public:
  virtual ~RoundFaultProvider() = default;

  /// Advances the provider to `round` (strictly increasing between
  /// calls). `capacity` is the round's acceptance capacity — constant
  /// without a controller, but the adaptive control plane (src/control/)
  /// retunes it at round boundaries, and a healthy bin's effective
  /// capacity must track the current value, not the value at plan
  /// construction. `load(bin)` reads the start-of-round load of a bin —
  /// used by load-aware events (crash-the-fullest); it must not be
  /// retained.
  virtual void begin_round(
      std::uint64_t round, std::uint32_t capacity,
      const std::function<std::uint64_t(std::uint32_t)>& load) = 0;

  /// True when any bin carries a flag or a reduced capacity this round;
  /// false lets the kernels keep their unfaulted fast paths.
  [[nodiscard]] virtual bool active() const noexcept = 0;

  /// Dense n-element array of FaultFlags masks for this round.
  [[nodiscard]] virtual const std::uint8_t* flags() const noexcept = 0;

  /// Dense n-element array: the acceptance bound of each bin this round
  /// (0 for a down bin, the degraded c_i while degraded, c otherwise).
  [[nodiscard]] virtual const std::uint32_t* effective_capacity()
      const noexcept = 0;

  /// Number of bins carrying any flag this round (telemetry).
  [[nodiscard]] virtual std::uint64_t faulted_bins() const noexcept = 0;
};

}  // namespace iba::core
