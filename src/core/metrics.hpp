// Per-round metrics emitted by every allocation process, plus the
// cumulative waiting-time recorder. These are the observables the paper's
// evaluation (Figures 4 and 5) is built from.
#pragma once

#include <cstdint>

#include "stats/histogram.hpp"
#include "stats/int_moments.hpp"
#include "stats/welford.hpp"

namespace iba::core {

/// Snapshot of what happened in one round of an infinite allocation
/// process. All counts refer to that round; pool/load fields are
/// end-of-round state.
struct RoundMetrics {
  std::uint64_t round = 0;
  std::uint64_t generated = 0;  ///< new balls created this round
  std::uint64_t thrown = 0;     ///< balls that sampled a bin (pool + new)
  std::uint64_t accepted = 0;   ///< balls accepted into a bin buffer
  std::uint64_t deleted = 0;    ///< balls deleted (served) this round
  std::uint64_t pool_size = 0;  ///< unallocated balls at end of round
  std::uint64_t total_load = 0; ///< balls stored in bins at end of round
  std::uint64_t max_load = 0;   ///< fullest bin at end of round
  std::uint32_t empty_bins = 0; ///< bins with zero load at end of round

  std::uint64_t wait_count = 0; ///< deleted balls contributing wait stats
  double wait_sum = 0.0;        ///< sum of their waiting times
  std::uint64_t wait_max = 0;   ///< max waiting time among them

  std::uint64_t requeued = 0;       ///< balls returned to the pool by
                                    ///< crashing bins this round
  std::uint64_t oldest_pool_age = 0;///< age of the oldest unallocated ball
                                    ///< at end of round (starvation depth)

  std::uint64_t shed = 0;        ///< arrivals dropped by backpressure
                                 ///< this round (kShed only)
  std::uint64_t deferred = 0;    ///< balls waiting out a retry backoff at
                                 ///< end of round (kDeferRetry only)
  std::uint64_t faulted_bins = 0;///< bins under an injected fault (down,
                                 ///< draining, or straggling) this round
};

/// Accumulates the waiting times of every deleted ball over a run:
/// moments for the average, a dyadic histogram for tail quantiles, and
/// the exact maximum.
class WaitRecorder {
 public:
  void record(std::uint64_t wait) noexcept {
    moments_.add(wait);
    histogram_.add(wait);
  }


  [[nodiscard]] std::uint64_t count() const noexcept {
    return moments_.count();
  }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev(); }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return histogram_.max();
  }
  /// Upper bound (within a factor of two) on the q-quantile.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept {
    return histogram_.quantile_upper_bound(q);
  }

  [[nodiscard]] const stats::UintMoments& moments() const noexcept {
    return moments_;
  }
  [[nodiscard]] const stats::Log2Histogram& histogram() const noexcept {
    return histogram_;
  }

  void reset() noexcept {
    moments_.reset();
    histogram_ = stats::Log2Histogram{};
  }

  /// Restores a previously captured state (checkpoint resume): the
  /// recorder continues exactly where the saved run left off, so resumed
  /// cumulative moments stay bit-identical to the uninterrupted run.
  void restore(const stats::UintMoments& moments,
               const stats::Log2Histogram& histogram) {
    moments_ = moments;
    histogram_ = histogram;
  }

 private:
  // Exact integer accumulation (Σw in 64 bits, Σw² in 128): cheap on
  // the per-deleted-ball hot path — no serial FP dependency chain — and
  // order-independent, which lets the fused bin-major kernel record
  // waits mid-sweep and still match the scalar path bit for bit.
  stats::UintMoments moments_;
  stats::Log2Histogram histogram_;
};

}  // namespace iba::core
