// The Lemma-1/Lemma-6 coupling of CAPPED(c, λ) and MODCAPPED(c, λ),
// executable: both processes advance in lockstep, MODCAPPED's first
// ν^C(t) balls reusing CAPPED's bin choices and the surplus drawing fresh
// ones. Under this coupling the paper proves the pointwise invariants
//
//     m^C(t) ≤ m^M(t)   and   ℓ_i^C(t) ≤ ℓ_i^M(t)  for every bin i,
//
// which CoupledRun::step() re-verifies every round (the property tests
// and bench_modcapped run this across seeds and parameters).
#pragma once

#include <cstdint>
#include <vector>

#include "core/capped.hpp"
#include "core/modcapped.hpp"

namespace iba::core {

/// Lockstep coupled execution of CAPPED and MODCAPPED with shared
/// randomness, checking stochastic-dominance invariants as it goes.
class CoupledRun {
 public:
  struct StepResult {
    RoundMetrics capped;
    RoundMetrics modcapped;
    bool pool_dominated = false;   ///< m^C(t) ≤ m^M(t) held this round
    bool loads_dominated = false;  ///< ℓ_i^C(t) ≤ ℓ_i^M(t) held for all i
  };

  /// Both processes share n/c/λ from `config`; `engine` drives the shared
  /// choice stream (the processes' own engines are unused).
  CoupledRun(const CappedConfig& config, Engine engine);

  StepResult step();

  [[nodiscard]] const Capped& capped() const noexcept { return capped_; }
  [[nodiscard]] const ModCapped& modcapped() const noexcept { return mod_; }
  [[nodiscard]] std::uint64_t round() const noexcept {
    return capped_.round();
  }
  /// Rounds so far in which an invariant was violated (0 expected).
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_;
  }

 private:
  Capped capped_;
  ModCapped mod_;
  Engine choice_engine_;
  std::vector<std::uint32_t> choices_;
  std::uint64_t violations_ = 0;
};

}  // namespace iba::core
