// The infinite parallel d-copy FIFO process of Adler, Berenbrink,
// Schröder [ESA'98] — the paper's related-work baseline with expected
// O(1) waiting time but the restrictive arrival bound m < n/(3de).
//
// Per round, m new balls arrive; each ball enqueues a copy of itself in
// the FIFO queues of d bins chosen independently and uniformly at
// random. At the end of the round, every bin whose queue contains a
// not-yet-served ball serves (deletes) the first such ball; serving a
// ball invalidates its copies in the other bins' queues (implemented as
// lazy tombstones skipped for free).
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"

namespace iba::core {

struct AdlerFifoConfig {
  std::uint32_t n = 0;  ///< bins
  std::uint32_t d = 2;  ///< copies per ball
  std::uint64_t m = 0;  ///< new balls per round (theory wants m < n/(3de))

  void validate() const;
};

/// The d-copy FIFO process. Deterministic given (config, engine).
class AdlerFifo {
 public:
  AdlerFifo(const AdlerFifoConfig& config, Engine engine);

  RoundMetrics step();

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  /// Balls arrived but not yet served.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_;
  }
  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  void reset_wait_stats() noexcept { waits_.reset(); }

 private:
  struct BallRecord {
    std::uint64_t birth = 0;
    std::uint32_t copies_left = 0;  ///< queue entries not yet popped
    bool served = false;
  };

  struct Queue {
    std::vector<std::uint32_t> items;  ///< ball ids
    std::size_t head = 0;
  };

  [[nodiscard]] std::uint32_t allocate_ball();
  void release_copy(std::uint32_t id);

  AdlerFifoConfig config_;
  Engine engine_;
  std::uint64_t round_ = 0;
  std::vector<BallRecord> balls_;
  std::vector<std::uint32_t> free_ids_;
  std::vector<Queue> queues_;
  std::uint64_t in_flight_ = 0;
  WaitRecorder waits_;
};

static_assert(AllocationProcess<AdlerFifo>);

}  // namespace iba::core
