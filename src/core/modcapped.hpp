// MODCAPPED(c, λ) — the modified process the paper couples CAPPED(c, λ)
// with to prove the pool-size bound (Section III-A for c = 1, Section IV-A
// for general c).
//
// Differences from CAPPED(c, λ):
//  * Ball generation: max{λn, m* − m(t−1)} new balls per round, so at
//    least m* balls are thrown every round.
//  * Each bin's capacity c is split between two *phase buffers*. Time is
//    partitioned into phases I_j = [c·j, c·(j+1) − 1]; buffer j has the
//    time-varying capacity c_j(t) of Eq. (5): it grows 0 → c during phase
//    j − 1 ("filling") and shrinks c → 1 during phase j ("draining"),
//    during which it also deletes one ball per round when non-empty.
//  * Balls carry a buffer preference (half prefer each active buffer);
//    bins place balls to maximize satisfied preferences without exceeding
//    either buffer's capacity (preferred buffer first, then the other).
//
// Note on the paper's red/blue naming: the text calls ⌈t/c⌉ the "red"
// buffer and says red deletes, but Eq. (5) and the proof of Lemma 7
// ("buffer j deletes balls only during I_j") identify the *deleting*
// buffer in round t as j = ⌊t/c⌋ (the only buffer whose own phase
// contains t, with capacity equal to its remaining deletion
// opportunities). We follow Eq. (5) and the lemma: ⌊t/c⌋ drains,
// ⌊t/c⌋ + 1 fills; the two coincide only at phase starts (t ≡ 0 mod c,
// where the filling buffer has capacity 0). For c = 1 this degenerates to
// Section III's MODCAPPED(1, λ): every round one buffer of capacity 1
// that is emptied at the end of the round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/capped.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"

namespace iba::core {

/// Configuration of MODCAPPED(c, λ). m_star defaults to the paper's
/// choice for the respective analysis (see m_star_default()).
struct ModCappedConfig {
  std::uint32_t n = 0;
  std::uint32_t capacity = 1;
  std::uint64_t lambda_n = 0;
  std::uint64_t m_star = 0;  ///< 0 → use m_star_default()

  [[nodiscard]] double lambda() const noexcept {
    return n == 0 ? 0.0
                  : static_cast<double>(lambda_n) / static_cast<double>(n);
  }

  /// The paper's m*: ln(1/(1−λ))·n + 2n for c = 1 (Section III) and
  /// (2/c)·ln(1/(1−λ))·n + 6·c·n for general c (Section IV), rounded up.
  [[nodiscard]] std::uint64_t m_star_default() const;

  void validate() const;
};

/// The MODCAPPED(c, λ) process. Deterministic given (config, engine).
class ModCapped {
 public:
  ModCapped(const ModCappedConfig& config, Engine engine);

  RoundMetrics step();

  /// Advances one round with caller-provided bin choices (one per thrown
  /// ball, pool order). Used by the Lemma-6 coupling: give MODCAPPED the
  /// full choice vector and CAPPED its prefix.
  RoundMetrics step_with_choices(std::span<const std::uint32_t> choices);

  /// Balls thrown next round: pool + max{λn, m* − pool}.
  [[nodiscard]] std::uint64_t balls_to_throw() const noexcept {
    const std::uint64_t pool = pool_.total();
    const std::uint64_t forced =
        pool < m_star_ ? m_star_ - pool : std::uint64_t{0};
    return pool + std::max(config_.lambda_n, forced);
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] std::uint64_t m_star() const noexcept { return m_star_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t pool_size() const noexcept {
    return pool_.total();
  }

  /// Combined end-of-round load of bin `i` (both active buffers).
  [[nodiscard]] std::uint64_t load(std::uint32_t i) const noexcept {
    return drain_.load(i) + fill_.load(i);
  }
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return drain_.total_load() + fill_.total_load();
  }

  /// Buffer capacities c_j(t) of the current round's active buffers.
  [[nodiscard]] std::uint32_t drain_capacity() const noexcept;
  [[nodiscard]] std::uint32_t fill_capacity() const noexcept;
  [[nodiscard]] std::uint64_t drain_load(std::uint32_t i) const noexcept {
    return drain_.load(i);
  }
  [[nodiscard]] std::uint64_t fill_load(std::uint32_t i) const noexcept {
    return fill_.load(i);
  }

  [[nodiscard]] const WaitRecorder& waits() const noexcept { return waits_; }
  [[nodiscard]] std::uint64_t generated_total() const noexcept {
    return generated_total_;
  }
  [[nodiscard]] std::uint64_t deleted_total() const noexcept {
    return deleted_total_;
  }

 private:
  struct Overflow {
    std::uint32_t bin;
    std::uint64_t label;
  };

  ModCappedConfig config_;
  std::uint64_t m_star_;
  Engine engine_;
  std::uint64_t round_ = 0;
  queueing::AgedPool pool_;
  queueing::AgedPool survivors_;
  std::vector<std::uint32_t> choice_scratch_;
  std::vector<Overflow> overflow_scratch_;
  // drain_ holds buffer ⌊t/c⌋ (deletes during its phase), fill_ holds
  // buffer ⌊t/c⌋ + 1; they swap at every phase start.
  queueing::BinTable drain_;
  queueing::BinTable fill_;
  WaitRecorder waits_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t deleted_total_ = 0;
};

static_assert(AllocationProcess<ModCapped>);

}  // namespace iba::core
