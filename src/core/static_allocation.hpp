// Static (one-shot) balls-into-bins allocations — the classical anchors
// of the paper's related work: one-choice (Raab & Steger, RANDOM'98) and
// sequential GREEDY[d] (Azar, Broder, Karlin, Upfal, SICOMP'99).
//
// one-choice, m = n:        max load (1 − o(1))·ln n / ln ln n w.h.p.
// one-choice, m ≫ n log n:  max load ≈ m/n + √(m·ln n / n) w.h.p.
// GREEDY[d], m = n, d ≥ 2:  max load ln ln n / ln d + O(1) w.h.p.
//
// bench_baselines regenerates these scalings to validate the substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"

namespace iba::core {

struct StaticAllocationResult {
  std::uint64_t max_load = 0;
  double average_load = 0.0;
  std::uint32_t empty_bins = 0;
  std::vector<std::uint64_t> loads;
};

/// Throws m balls into n bins, each choosing one bin u.a.r.
[[nodiscard]] StaticAllocationResult one_choice(std::uint32_t n,
                                                std::uint64_t m,
                                                Engine engine);

/// Sequential GREEDY[d]: each ball samples d bins u.a.r. (with
/// replacement) and commits to a least-loaded one, observing all
/// previously placed balls.
[[nodiscard]] StaticAllocationResult greedy_d(std::uint32_t n,
                                              std::uint64_t m, std::uint32_t d,
                                              Engine engine);

/// Vöcking's ALWAYS-GO-LEFT[d] (JACM'03): bins are split into d groups;
/// each ball samples one bin per group and commits to a least-loaded
/// one, breaking ties toward the leftmost (lowest-index) group. The
/// asymmetry improves GREEDY[d]'s ln ln n / ln d to
/// ln ln n / (d·ln φ_d) — measurably tighter even at d = 2.
/// Requires d ≥ 2 and d ≤ n.
[[nodiscard]] StaticAllocationResult always_go_left(std::uint32_t n,
                                                    std::uint64_t m,
                                                    std::uint32_t d,
                                                    Engine engine);

/// Load histogram: entry k = number of bins with exactly k balls.
[[nodiscard]] std::vector<std::uint64_t> load_histogram(
    const std::vector<std::uint64_t>& loads);

}  // namespace iba::core
