#include "core/hetero_capped.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "rng/bounded.hpp"

namespace iba::core {

std::uint64_t HeteroCappedConfig::total_capacity() const noexcept {
  return std::accumulate(capacities.begin(), capacities.end(),
                         std::uint64_t{0});
}

void HeteroCappedConfig::validate() const {
  IBA_EXPECT(!capacities.empty(), "HeteroCappedConfig: needs bins");
  for (const std::uint32_t c : capacities) {
    IBA_EXPECT(c >= 1, "HeteroCappedConfig: every capacity must be >= 1");
  }
  IBA_EXPECT(weights.empty() || weights.size() == capacities.size(),
             "HeteroCappedConfig: weights must be empty or match bins");
  IBA_EXPECT(lambda_n <= capacities.size(),
             "HeteroCappedConfig: lambda must be at most 1");
}

HeteroCappedConfig HeteroCappedConfig::uniform(std::uint32_t n,
                                               std::uint32_t c,
                                               std::uint64_t lambda_n) {
  HeteroCappedConfig config;
  config.capacities.assign(n, c);
  config.lambda_n = lambda_n;
  return config;
}

namespace {

std::vector<double> effective_weights(const HeteroCappedConfig& config) {
  if (!config.weights.empty()) return config.weights;
  return std::vector<double>(config.capacities.size(), 1.0);
}

}  // namespace

HeteroCapped::HeteroCapped(const HeteroCappedConfig& config, Engine engine)
    : capacities_(config.capacities),
      lambda_n_(config.lambda_n),
      selector_(effective_weights(config)),
      uniform_selection_(config.weights.empty()),
      engine_(engine),
      queues_(config.capacities.size()) {
  config.validate();
}

RoundMetrics HeteroCapped::step() {
  ++round_;
  pool_.add(round_, lambda_n_);
  generated_total_ += lambda_n_;

  RoundMetrics m;
  m.round = round_;
  m.generated = lambda_n_;
  m.thrown = pool_.total();

  const auto n = static_cast<std::uint32_t>(capacities_.size());
  survivors_.clear();
  for (const auto& bucket : pool_.buckets()) {
    for (std::uint64_t k = 0; k < bucket.count; ++k) {
      const std::uint32_t bin = uniform_selection_
                                    ? rng::bounded32(engine_, n)
                                    : selector_.sample(engine_);
      Queue& queue = queues_[bin];
      if (queue.size() < capacities_[bin]) {
        queue.labels.push_back(bucket.label);
        ++total_load_;
        ++m.accepted;
      } else {
        survivors_.add(bucket.label, 1);
      }
    }
  }
  pool_.swap(survivors_);

  std::uint64_t max_load = 0;
  std::uint32_t empty = 0;
  for (Queue& queue : queues_) {
    if (queue.size() > 0) {
      const std::uint64_t label = queue.labels[queue.head++];
      if (queue.head >= 16 && queue.head * 2 >= queue.labels.size()) {
        queue.labels.erase(queue.labels.begin(),
                           queue.labels.begin() +
                               static_cast<std::ptrdiff_t>(queue.head));
        queue.head = 0;
      }
      --total_load_;
      const std::uint64_t wait = round_ - label;
      waits_.record(wait);
      ++m.deleted;
      ++m.wait_count;
      m.wait_sum += static_cast<double>(wait);
      if (wait > m.wait_max) m.wait_max = wait;
    }
    max_load = std::max<std::uint64_t>(max_load, queue.size());
    if (queue.size() == 0) ++empty;
  }
  deleted_total_ += m.deleted;

  m.pool_size = pool_.total();
  m.total_load = total_load_;
  m.max_load = max_load;
  m.empty_bins = empty;
  return m;
}

}  // namespace iba::core
