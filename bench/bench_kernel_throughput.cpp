// Round-kernel throughput: scalar ball-at-a-time loop vs the bin-major
// counting-sort kernel (core/capped.cpp), optionally sharded. Verifies
// that every variant produces the identical trajectory, then times the
// steady-state round loop and reports balls/second. Machine-readable
// results go to --json (default BENCH_kernel.json); docs/PERFORMANCE.md
// records representative numbers.
//
//   ./bench_kernel_throughput                 # full size: n = 10^6
//   ./bench_kernel_throughput --quick true    # CI smoke: n = 2^16
//   ./bench_kernel_throughput --shards 4      # also time a sharded run
//
// Shard-scaling mode sweeps the bin-major kernel over shard counts and
// writes a second JSON (default BENCH_scale.json) gated by
// scripts/bench_trend.py exactly like the kernel baseline:
//
//   ./bench_kernel_throughput --large true --arena true
//       --shards-sweep 1,2,4,8                # n = 10^7 scaling curve
//   ./bench_kernel_throughput --huge true --arena true --shards-sweep 4
//                                             # n = 10^8 smoke: asserts
//                                             # no per-round allocations

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "telemetry/log.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::RoundKernel;
using iba::core::RoundMetrics;

struct Measurement {
  RoundKernel kernel = RoundKernel::kScalar;
  std::uint32_t shards = 1;
  std::uint64_t rounds = 0;
  std::uint64_t balls = 0;  ///< thrown balls inside the timed window
  double seconds = 0.0;
  double throw_ns_per_ball = 0.0;
  double accept_ns_per_ball = 0.0;
  double delete_ns_per_ball = 0.0;

  // Arena telemetry (meaningful only when the variant ran with an
  // arena): allocation counter after the timed window, and whether the
  // timed window itself allocated nothing — the large-n steady-state
  // requirement.
  std::uint64_t arena_allocations = 0;
  std::uint64_t arena_live_bytes = 0;
  std::uint64_t arena_huge_bytes = 0;
  bool arena_steady = true;

  [[nodiscard]] double balls_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(balls) / seconds : 0.0;
  }
  [[nodiscard]] double ns_per_ball() const {
    return balls > 0 ? seconds * 1e9 / static_cast<double>(balls) : 0.0;
  }
  [[nodiscard]] double seconds_per_round() const {
    return rounds > 0 ? seconds / static_cast<double>(rounds) : 0.0;
  }
};

/// Execution hints shared by every timed variant (byte-inert: arena,
/// huge pages and pinning never change the trajectory).
struct ExecOptions {
  bool arena = false;
  bool huge_pages = false;
  bool pin_threads = false;
};

CappedConfig make_config(std::uint32_t n, std::uint32_t capacity,
                         std::uint64_t lambda_n, RoundKernel kernel,
                         std::uint32_t shards, const ExecOptions& exec = {}) {
  CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  config.kernel = kernel;
  config.shards = shards;
  config.arena.enabled = exec.arena;
  config.arena.huge_pages = exec.huge_pages;
  config.pin_threads = exec.pin_threads;
  return config;
}

Measurement time_variant(const CappedConfig& config, std::uint64_t seed,
                         std::uint64_t burn_in, std::uint64_t rounds,
                         bool record = false) {
  Capped process(config, iba::core::Engine(seed));
  for (std::uint64_t r = 0; r < burn_in; ++r) (void)process.step();
  Measurement out;
  out.kernel = config.kernel;
  out.shards = config.shards;
  out.rounds = rounds;
  iba::telemetry::PhaseTimers timers;
  process.set_phase_timers(&timers);
  iba::telemetry::TimeSeries series;  // cadence 1, every round sampled
  if (record) process.set_time_series(&series);
  // Allocation count entering the timed window: any growth during it
  // means a round still allocates at steady state (the ArenaBuffers'
  // geometric headroom is supposed to absorb the ±√ν throw jitter).
  const std::uint64_t allocs_before =
      process.arena() ? process.arena()->allocation_count() : 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    out.balls += process.step().thrown;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  out.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  if (const auto* arena = process.arena()) {
    out.arena_allocations = arena->allocation_count();
    out.arena_live_bytes = arena->live_bytes();
    out.arena_huge_bytes = arena->huge_advised_bytes();
    out.arena_steady = arena->allocation_count() == allocs_before;
  }
  out.throw_ns_per_ball = timers.ns_per_ball(iba::telemetry::Phase::kThrow);
  out.accept_ns_per_ball = timers.ns_per_ball(iba::telemetry::Phase::kAccept);
  out.delete_ns_per_ball = timers.ns_per_ball(iba::telemetry::Phase::kDelete);
  return out;
}

/// Runs every variant over a small instance and demands byte-identical
/// round metrics and end-state before any timing is trusted. The widest
/// sharded variant repeats with the arena and thread pinning forced on:
/// the execution hints must be byte-inert too.
bool check_determinism(std::uint32_t capacity, std::uint64_t seed,
                       const std::vector<std::uint32_t>& shard_counts) {
  const std::uint32_t n = 4096;
  const std::uint64_t lambda_n = 3891;  // λ ≈ 0.95
  const std::uint64_t rounds = 200;

  std::vector<Capped> variants;
  variants.emplace_back(
      make_config(n, capacity, lambda_n, RoundKernel::kScalar, 1),
      iba::core::Engine(seed));
  variants.emplace_back(
      make_config(n, capacity, lambda_n, RoundKernel::kBinMajor, 1),
      iba::core::Engine(seed));
  std::uint32_t max_shards = 1;
  for (const std::uint32_t shards : shard_counts) {
    if (shards <= 1) continue;
    max_shards = std::max(max_shards, shards);
    variants.emplace_back(
        make_config(n, capacity, lambda_n, RoundKernel::kBinMajor, shards),
        iba::core::Engine(seed));
  }
  ExecOptions forced;
  forced.arena = true;
  forced.pin_threads = true;
  variants.emplace_back(
      make_config(n, capacity, lambda_n, RoundKernel::kBinMajor,
                  std::max(max_shards, 2u), forced),
      iba::core::Engine(seed));

  for (std::uint64_t r = 0; r < rounds; ++r) {
    const RoundMetrics reference = variants.front().step();
    for (std::size_t v = 1; v < variants.size(); ++v) {
      const RoundMetrics m = variants[v].step();
      if (m.thrown != reference.thrown || m.accepted != reference.accepted ||
          m.deleted != reference.deleted ||
          m.pool_size != reference.pool_size ||
          m.total_load != reference.total_load ||
          m.max_load != reference.max_load ||
          m.empty_bins != reference.empty_bins ||
          m.wait_sum != reference.wait_sum ||
          m.wait_max != reference.wait_max) {
        iba::telemetry::log_error(
            "determinism_mismatch",
            {{"round", r}, {"variant", static_cast<std::uint64_t>(v)}});
        return false;
      }
    }
  }
  const auto reference = variants.front().snapshot();
  for (std::size_t v = 1; v < variants.size(); ++v) {
    const auto snap = variants[v].snapshot();
    if (snap.engine_state != reference.engine_state ||
        snap.bin_queues != reference.bin_queues ||
        snap.pool.size() != reference.pool.size()) {
      iba::telemetry::log_error("determinism_end_state_mismatch",
                                {{"variant", static_cast<std::uint64_t>(v)}});
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  iba::io::ArgParser parser(
      "bench_kernel_throughput",
      "scalar vs bin-major round-kernel throughput (BENCH_kernel.json)");
  parser.add_flag("n", "number of bins", "1000000");
  parser.add_flag("lambda", "arrival rate per bin", "0.95");
  parser.add_flag("capacity", "bin buffer size c", "2");
  parser.add_flag("burnin", "untimed warm-up rounds", "150");
  parser.add_flag("rounds", "timed rounds per variant", "100");
  parser.add_flag("seed", "master seed", "2021");
  parser.add_flag("shards",
                  "also time the bin-major kernel with this many shards "
                  "(1 = skip the sharded variant)",
                  "1");
  parser.add_flag("quick",
                  "CI smoke mode: n = 65536, 50 burn-in, 30 timed rounds",
                  "false");
  parser.add_flag("large",
                  "large-n mode: n = 10^7, 10 burn-in, 20 timed rounds",
                  "false");
  parser.add_flag("huge",
                  "very-large-n smoke: n = 10^8, 3 burn-in, 4 timed "
                  "rounds (pair with --arena true to assert rounds stop "
                  "allocating)",
                  "false");
  parser.add_flag("shards-sweep",
                  "comma-separated shard counts (e.g. 1,2,4,8): also "
                  "sweep the bin-major kernel over these and write the "
                  "scaling curve to --scale-json",
                  "");
  parser.add_flag("arena",
                  "back bin/scratch state with the mmap arena",
                  "false");
  parser.add_flag("huge-pages",
                  "advise MADV_HUGEPAGE on arena mappings", "false");
  parser.add_flag("pin-threads",
                  "pin shard workers to CPUs (best-effort)", "false");
  parser.add_flag("scale-json",
                  "output path for the --shards-sweep scaling results",
                  "BENCH_scale.json");
  parser.add_flag("control",
                  "none|static: also time each variant with the inert "
                  "static control plane attached and report its overhead "
                  "(budget: < 2%)",
                  "none");
  parser.add_flag("record",
                  "also time each variant with a cadence-1 time series "
                  "attached and report the recorder's overhead "
                  "(budget: < 3%)",
                  "false");
  parser.add_flag("json", "output path for machine-readable results",
                  "BENCH_kernel.json");
  if (!parser.parse_or_exit(argc, argv)) return 2;

  std::uint32_t n = static_cast<std::uint32_t>(parser.get_uint("n"));
  const double lambda = parser.get_double("lambda");
  const std::uint32_t capacity =
      static_cast<std::uint32_t>(parser.get_uint("capacity"));
  std::uint64_t burn_in = parser.get_uint("burnin");
  std::uint64_t rounds = parser.get_uint("rounds");
  const std::uint64_t seed = parser.get_uint("seed");
  const std::uint32_t shards =
      static_cast<std::uint32_t>(parser.get_uint("shards"));
  const bool quick = parser.get_bool("quick");
  const bool large = parser.get_bool("large");
  const bool huge = parser.get_bool("huge");
  if (quick + large + huge > 1) {
    iba::io::fail_usage(
        "bench_kernel_throughput: --quick, --large and --huge are "
        "mutually exclusive size presets");
  }
  ExecOptions exec;
  exec.arena = parser.get_bool("arena");
  exec.huge_pages = parser.get_bool("huge-pages");
  exec.pin_threads = parser.get_bool("pin-threads");
  if (exec.huge_pages && !exec.arena) {
    iba::io::fail_usage(
        "bench_kernel_throughput: --huge-pages needs --arena true");
  }
  const std::string sweep_spec = parser.get("shards-sweep");
  std::vector<std::uint32_t> sweep;
  for (std::size_t pos = 0; pos < sweep_spec.size();) {
    const std::size_t comma = sweep_spec.find(',', pos);
    const std::string item = sweep_spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    try {
      const unsigned long value = std::stoul(item);
      if (value == 0 || value > 256) throw std::out_of_range(item);
      sweep.push_back(static_cast<std::uint32_t>(value));
    } catch (const std::exception&) {
      iba::io::fail_usage("bench_kernel_throughput: --shards-sweep "
                          "expects comma-separated counts in [1, 256] "
                          "(got '" + item + "')");
    }
    pos = comma == std::string::npos ? sweep_spec.size() : comma + 1;
  }
  const std::string scale_json_path = parser.get("scale-json");
  const std::string control_mode = parser.get("control");
  if (control_mode != "none" && control_mode != "static") {
    iba::io::fail_usage("bench_kernel_throughput: --control must be "
                        "'none' or 'static' (got '" +
                        control_mode + "')");
  }
  const bool control_static = control_mode == "static";
  const bool record = parser.get_bool("record");
  const std::string json_path = parser.get("json");
  if (quick) {
    if (!parser.provided("n")) n = 1u << 16;
    if (!parser.provided("burnin")) burn_in = 50;
    if (!parser.provided("rounds")) rounds = 30;
  }
  if (large) {
    if (!parser.provided("n")) n = 10'000'000;
    if (!parser.provided("burnin")) burn_in = 10;
    if (!parser.provided("rounds")) rounds = 20;
  }
  if (huge) {
    // Burn-in must cover the rounds where the grow-only scratch buffers
    // still chase the ±√ν throw jitter; 3 is enough for the geometric
    // headroom to win, after which a steady round allocates nothing.
    if (!parser.provided("n")) n = 100'000'000;
    if (!parser.provided("burnin")) burn_in = 3;
    if (!parser.provided("rounds")) rounds = 4;
  }
  const std::uint64_t lambda_n = static_cast<std::uint64_t>(
      std::llround(lambda * static_cast<double>(n)));

  std::vector<std::uint32_t> determinism_shards = {2, shards};
  determinism_shards.insert(determinism_shards.end(), sweep.begin(),
                            sweep.end());
  const bool determinism_ok =
      check_determinism(capacity, seed, determinism_shards);
  iba::telemetry::log_info("determinism_check",
                           {{"ok", determinism_ok}});
  if (!determinism_ok) return 1;

  std::vector<Measurement> results;
  results.push_back(time_variant(
      make_config(n, capacity, lambda_n, RoundKernel::kScalar, 1, exec),
      seed, burn_in, rounds));
  results.push_back(time_variant(
      make_config(n, capacity, lambda_n, RoundKernel::kBinMajor, 1, exec),
      seed, burn_in, rounds));
  if (shards > 1) {
    results.push_back(time_variant(
        make_config(n, capacity, lambda_n, RoundKernel::kBinMajor, shards,
                    exec),
        seed, burn_in, rounds));
  }

  // Shard-scaling sweep: the bin-major kernel only (the scalar kernel
  // cannot shard), same instance, one row per shard count.
  std::vector<Measurement> scale_results;
  for (const std::uint32_t sweep_shards : sweep) {
    scale_results.push_back(time_variant(
        make_config(n, capacity, lambda_n, RoundKernel::kBinMajor,
                    sweep_shards, exec),
        seed, burn_in, rounds));
  }

  // Inert-control overhead: the same variants with --control static
  // attached run their estimators every round but never change anything,
  // so the trajectory is identical and the delta is the control plane's
  // full fixed cost. Budget (docs/CONTROL.md): < 2%.
  std::vector<Measurement> control_results;
  std::vector<double> control_overhead_pct;
  if (control_static) {
    // Scheduler jitter swings a single sample by several percent — far
    // more than the effect being measured — so base and controlled runs
    // are interleaved and the minimum over a few repetitions is compared.
    const int reps = quick ? 2 : 3;
    for (const Measurement& variant : results) {
      const CappedConfig base_config =
          make_config(n, capacity, lambda_n, variant.kernel, variant.shards);
      CappedConfig control_config = base_config;
      control_config.control.policy = iba::control::Policy::kStatic;
      control_config.control.c_max = std::max(capacity, 16u);
      Measurement best_base;
      Measurement best_control;
      for (int rep = 0; rep < reps; ++rep) {
        const Measurement base_sample =
            time_variant(base_config, seed, burn_in, rounds);
        const Measurement control_sample =
            time_variant(control_config, seed, burn_in, rounds);
        if (rep == 0 || base_sample.seconds < best_base.seconds) {
          best_base = base_sample;
        }
        if (rep == 0 || control_sample.seconds < best_control.seconds) {
          best_control = control_sample;
        }
      }
      control_results.push_back(best_control);
      control_overhead_pct.push_back(
          best_base.seconds > 0.0
              ? (best_control.seconds / best_base.seconds - 1.0) * 100.0
              : 0.0);
    }
  }

  // Recorder overhead: the same variants with a cadence-1 TimeSeries
  // attached sample every round into the delta rings. The trajectory is
  // untouched (sampling is read-only), so the delta is the recorder's
  // full fixed cost. Budget (docs/TELEMETRY.md): < 3%. Interleaved
  // min-of-reps for the same jitter reason as the control measurement.
  std::vector<Measurement> record_results;
  std::vector<double> record_overhead_pct;
  if (record) {
    // The effect is one observe() per million-ball round — far below
    // this container's scheduler jitter — so it takes more repetitions
    // than the control measurement for the minima to stabilize.
    const int reps = quick ? 2 : 5;
    for (const Measurement& variant : results) {
      const CappedConfig config =
          make_config(n, capacity, lambda_n, variant.kernel, variant.shards);
      Measurement best_base;
      Measurement best_record;
      for (int rep = 0; rep < reps; ++rep) {
        const Measurement base_sample =
            time_variant(config, seed, burn_in, rounds);
        const Measurement record_sample =
            time_variant(config, seed, burn_in, rounds, /*record=*/true);
        if (rep == 0 || base_sample.seconds < best_base.seconds) {
          best_base = base_sample;
        }
        if (rep == 0 || record_sample.seconds < best_record.seconds) {
          best_record = record_sample;
        }
      }
      record_results.push_back(best_record);
      record_overhead_pct.push_back(
          best_base.seconds > 0.0
              ? (best_record.seconds / best_base.seconds - 1.0) * 100.0
              : 0.0);
    }
  }

  const double speedup = results[0].seconds > 0.0 && results[1].seconds > 0.0
                             ? results[1].balls_per_sec() /
                                   results[0].balls_per_sec()
                             : 0.0;

  std::printf("kernel throughput  n=%u c=%u lambda_n=%llu  %llu rounds\n", n,
              capacity, static_cast<unsigned long long>(lambda_n),
              static_cast<unsigned long long>(rounds));
  for (const Measurement& m : results) {
    std::printf(
        "  %-9s shards=%u  %9.3f s  %12.0f balls/s  %6.2f ns/ball  "
        "(throw %.2f / accept %.2f / delete %.2f ns/ball)\n",
        std::string(iba::core::to_string(m.kernel)).c_str(), m.shards,
        m.seconds, m.balls_per_sec(), m.ns_per_ball(), m.throw_ns_per_ball,
        m.accept_ns_per_ball, m.delete_ns_per_ball);
  }
  std::printf("  bin-major vs scalar speedup: %.2fx\n", speedup);
  for (const Measurement& m : scale_results) {
    std::printf(
        "  sweep     shards=%u  %9.3f s  %12.0f balls/s  %6.2f ns/ball  "
        "%8.2f ms/round%s\n",
        m.shards, m.seconds, m.balls_per_sec(), m.ns_per_ball(),
        m.seconds_per_round() * 1e3,
        exec.arena ? (m.arena_steady ? "  arena steady" : "  ARENA GREW")
                   : "");
  }
  double scale_speedup = 0.0;
  if (scale_results.size() > 1) {
    const Measurement& first = scale_results.front();
    const Measurement& last = scale_results.back();
    if (first.seconds > 0.0 && last.seconds > 0.0) {
      scale_speedup = last.balls_per_sec() / first.balls_per_sec();
    }
    std::printf("  shards=%u vs shards=%u speedup: %.2fx\n", last.shards,
                first.shards, scale_speedup);
  }

  // Steady-state allocation gate: with the arena on, no timed round may
  // allocate (the large-n acceptance bar — growth here means a round
  // still churns memory at steady state).
  bool arena_ok = true;
  if (exec.arena) {
    for (const Measurement& m : results) arena_ok &= m.arena_steady;
    for (const Measurement& m : scale_results) arena_ok &= m.arena_steady;
    if (!arena_ok) {
      iba::telemetry::log_error("arena_allocated_in_timed_rounds", {});
    }
  }
  for (std::size_t i = 0; i < control_results.size(); ++i) {
    std::printf("  +static control  %-9s shards=%u  %9.3f s  %+6.2f%%\n",
                std::string(iba::core::to_string(control_results[i].kernel))
                    .c_str(),
                control_results[i].shards, control_results[i].seconds,
                control_overhead_pct[i]);
  }
  for (std::size_t i = 0; i < record_results.size(); ++i) {
    std::printf("  +recording       %-9s shards=%u  %9.3f s  %+6.2f%%\n",
                std::string(iba::core::to_string(record_results[i].kernel))
                    .c_str(),
                record_results[i].shards, record_results[i].seconds,
                record_overhead_pct[i]);
  }

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    iba::telemetry::log_error("json_open_failed", {{"path", json_path}});
    return 1;
  }
  iba::io::JsonWriter json(out);
  json.begin_object();
  json.key("bench").value("kernel_throughput");
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("capacity").value(static_cast<std::uint64_t>(capacity));
  json.key("lambda_n").value(lambda_n);
  json.key("burn_in").value(burn_in);
  json.key("rounds").value(rounds);
  json.key("seed").value(seed);
  json.key("quick").value(quick);
  json.key("determinism_ok").value(determinism_ok);
  json.key("results").begin_array();
  for (const Measurement& m : results) {
    json.begin_object();
    json.key("kernel").value(iba::core::to_string(m.kernel));
    json.key("shards").value(static_cast<std::uint64_t>(m.shards));
    json.key("rounds").value(m.rounds);
    json.key("balls").value(m.balls);
    json.key("seconds").value(m.seconds);
    json.key("balls_per_sec").value(m.balls_per_sec());
    json.key("ns_per_ball").value(m.ns_per_ball());
    json.key("throw_ns_per_ball").value(m.throw_ns_per_ball);
    json.key("accept_ns_per_ball").value(m.accept_ns_per_ball);
    json.key("delete_ns_per_ball").value(m.delete_ns_per_ball);
    if (exec.arena) {
      json.key("arena_allocations").value(m.arena_allocations);
      json.key("arena_live_bytes").value(m.arena_live_bytes);
      json.key("arena_huge_bytes").value(m.arena_huge_bytes);
      json.key("arena_steady").value(m.arena_steady);
    }
    json.end_object();
  }
  json.end_array();
  json.key("speedup_bin_major_vs_scalar").value(speedup);
  if (control_static) {
    json.key("control_overhead").begin_array();
    for (std::size_t i = 0; i < control_results.size(); ++i) {
      json.begin_object();
      json.key("kernel").value(iba::core::to_string(control_results[i].kernel));
      json.key("shards")
          .value(static_cast<std::uint64_t>(control_results[i].shards));
      json.key("seconds").value(control_results[i].seconds);
      json.key("overhead_pct").value(control_overhead_pct[i]);
      json.end_object();
    }
    json.end_array();
  }
  if (record) {
    json.key("record_overhead").begin_array();
    for (std::size_t i = 0; i < record_results.size(); ++i) {
      json.begin_object();
      json.key("kernel").value(iba::core::to_string(record_results[i].kernel));
      json.key("shards")
          .value(static_cast<std::uint64_t>(record_results[i].shards));
      json.key("seconds").value(record_results[i].seconds);
      json.key("overhead_pct").value(record_overhead_pct[i]);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  out << "\n";
  iba::telemetry::log_info("bench_json_written", {{"path", json_path}});

  // The scaling curve gets its own artifact in the same results[] shape
  // bench_trend.py keys on, so the committed BENCH_scale.json baseline
  // is gated exactly like the kernel baseline.
  if (!sweep.empty()) {
    std::ofstream scale_out(scale_json_path, std::ios::trunc);
    if (!scale_out) {
      iba::telemetry::log_error("json_open_failed",
                                {{"path", scale_json_path}});
      return 1;
    }
    iba::io::JsonWriter scale(scale_out);
    scale.begin_object();
    scale.key("bench").value("kernel_scale");
    scale.key("n").value(static_cast<std::uint64_t>(n));
    scale.key("capacity").value(static_cast<std::uint64_t>(capacity));
    scale.key("lambda_n").value(lambda_n);
    scale.key("burn_in").value(burn_in);
    scale.key("rounds").value(rounds);
    scale.key("seed").value(seed);
    scale.key("arena").value(exec.arena);
    scale.key("huge_pages").value(exec.huge_pages);
    scale.key("pin_threads").value(exec.pin_threads);
    scale.key("determinism_ok").value(determinism_ok);
    scale.key("results").begin_array();
    for (const Measurement& m : scale_results) {
      scale.begin_object();
      scale.key("kernel").value(iba::core::to_string(m.kernel));
      scale.key("shards").value(static_cast<std::uint64_t>(m.shards));
      scale.key("rounds").value(m.rounds);
      scale.key("balls").value(m.balls);
      scale.key("seconds").value(m.seconds);
      scale.key("balls_per_sec").value(m.balls_per_sec());
      scale.key("ns_per_ball").value(m.ns_per_ball());
      scale.key("seconds_per_round").value(m.seconds_per_round());
      scale.key("throw_ns_per_ball").value(m.throw_ns_per_ball);
      scale.key("accept_ns_per_ball").value(m.accept_ns_per_ball);
      scale.key("delete_ns_per_ball").value(m.delete_ns_per_ball);
      if (exec.arena) {
        scale.key("arena_allocations").value(m.arena_allocations);
        scale.key("arena_live_bytes").value(m.arena_live_bytes);
        scale.key("arena_huge_bytes").value(m.arena_huge_bytes);
        scale.key("arena_steady").value(m.arena_steady);
      }
      scale.end_object();
    }
    scale.end_array();
    scale.key("speedup_max_vs_min_shards").value(scale_speedup);
    scale.end_object();
    scale_out << "\n";
    iba::telemetry::log_info("bench_json_written",
                             {{"path", scale_json_path}});
  }
  return arena_ok ? 0 : 1;
}
