// E3 — Figure 5 (left): average and maximum waiting time as a function
// of the capacity c ∈ [1, 5] for λ = 1 − 1/2², 1 − 1/2^10, 1 − 1/2^13,
// against the dashed reference ln(1/(1−λ))/c + log₂ log₂ n + c.
//
// Expected shape (paper): both curves dip around c = 2…3 (the sweet
// spot) and the maximum stays below the reference.
//
// λ = 1 − 2^(−13) requires n ≥ 2^13 for λn to be integral; the series is
// skipped (with a notice) for smaller --n.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "io/plot.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_fig5_wait_vs_c",
                       "Figure 5 (left): waiting time vs capacity");
  bench::add_standard_flags(parser);
  parser.add_flag("cmax", "largest capacity to sweep", "5");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto c_max = static_cast<std::uint32_t>(parser.get_uint("cmax"));

  const std::vector<std::uint32_t> lambda_exponents = {2, 10, 13};

  io::Table table({"c", "lambda", "wait_avg", "wait_max", "reference",
                   "max_below_ref"});
  table.set_title("Figure 5 (left): waiting time vs capacity c");
  std::vector<std::vector<double>> csv_rows;

  io::AsciiPlot plot(48, 12);
  plot.set_title("Figure 5 (left): average waiting time vs capacity c");
  plot.set_x_label("c");

  for (const std::uint32_t i : lambda_exponents) {
    std::vector<double> plot_cs, plot_waits;
    if ((options.n >> i) == 0 ||
        (static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) {
      std::fprintf(stderr,
                   "[skip] lambda=1-2^-%u needs n divisible by 2^%u "
                   "(n=%u); rerun with a larger --n\n",
                   i, i, options.n);
      continue;
    }
    const double lambda = sim::lambda_one_minus_2pow(i);
    for (std::uint32_t c = 1; c <= c_max; ++c) {
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);
      const double reference =
          analysis::fig5_reference(options.n, lambda, c);
      const auto wait_max = static_cast<double>(result.wait_max);
      table.add_row({io::Table::format_number(c),
                     "1-2^-" + std::to_string(i),
                     io::Table::format_number(result.wait_mean),
                     io::Table::format_number(wait_max),
                     io::Table::format_number(reference),
                     wait_max <= reference ? "yes" : "NO"});
      csv_rows.push_back({static_cast<double>(c), lambda, result.wait_mean,
                          wait_max, result.wait_p99_upper, reference});
      plot_cs.push_back(c);
      plot_waits.push_back(result.wait_mean);
    }
    if (!plot_cs.empty()) {
      plot.add_series("lambda=1-2^-" + std::to_string(i), plot_cs,
                      plot_waits);
    }
  }
  plot.print();
  std::printf("\n");

  bench::emit(table, options, "fig5_wait_vs_c",
              {"c", "lambda", "wait_avg", "wait_max", "wait_p99_upper",
               "reference"},
              csv_rows);
  return 0;
}
