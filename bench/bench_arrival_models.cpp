// E12 — arrival-model robustness (paper footnote 2): the theorems are
// stated for exactly λn arrivals per round but "can be adjusted to a
// probabilistic ball generation process". This bench runs CAPPED under
// deterministic, Binomial(n, λ) and Poisson(λn) arrivals on the same
// grid and reports how far the stochastic variants drift.
//
// Expected shape: pool and waiting time essentially coincide across the
// three models (differences within a few percent), with Poisson the
// most variable tail.
#include <vector>

#include "bench_common.hpp"
#include "core/capped.hpp"
#include "scenario/arrival.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_arrival_models",
                       "CAPPED under deterministic/binomial/poisson arrivals");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::vector<std::uint32_t> lambda_exponents = {2, 6};
  const std::vector<std::uint32_t> capacities = {1, 3};
  const std::vector<core::ArrivalModel> models = {
      core::ArrivalModel::kDeterministic, core::ArrivalModel::kBinomial,
      core::ArrivalModel::kPoisson};

  io::Table table({"lambda", "c", "arrivals", "pool/n", "wait_avg",
                   "wait_max"});
  table.set_title("Arrival-model robustness (footnote 2)");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t i : lambda_exponents) {
    for (const std::uint32_t c : capacities) {
      for (const auto model : models) {
        // The workload as a declarative arrival model (scenario/arrival.hpp)
        // — the same object the scenario engine builds from a .scn file.
        const auto arrival = scenario::ArrivalModel::constant(
            sim::lambda_one_minus_2pow(i), model);
        arrival.validate(options.n);
        core::ArrivalModel distribution{};
        std::uint64_t lambda_n = 0;
        arrival.apply_to(options.n, distribution, lambda_n);

        auto sim_config = bench::make_cell(options, c, lambda_n);
        core::CappedConfig config = sim_config.to_capped();
        config.arrival = distribution;
        std::fprintf(stderr, "[cell] %s arrivals=%s ...\n",
                     sim_config.label().c_str(),
                     std::string(core::to_string(model)).c_str());
        core::Capped process(config, core::Engine(options.seed));
        sim::RunSpec spec = sim::RunSpec::from_config(sim_config);
        const auto result = sim::run_experiment(process, spec);

        table.add_row({io::Table::format_number(config.lambda()),
                       io::Table::format_number(c),
                       std::string(core::to_string(model)),
                       io::Table::format_number(
                           result.normalized_pool.mean()),
                       io::Table::format_number(result.wait_mean),
                       io::Table::format_number(
                           static_cast<double>(result.wait_max))});
        csv_rows.push_back({config.lambda(), static_cast<double>(c),
                            static_cast<double>(model),
                            result.normalized_pool.mean(), result.wait_mean,
                            static_cast<double>(result.wait_max)});
      }
    }
  }

  bench::emit(table, options, "arrival_models",
              {"lambda", "c", "model", "pool_over_n", "wait_avg",
               "wait_max"},
              csv_rows);
  return 0;
}
