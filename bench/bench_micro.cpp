// E11 — engineering microbenchmarks (google-benchmark): per-round and
// per-ball cost of every process, the RNG substrate, and the two design
// ablations called out in DESIGN.md §7 (age-bucketed pool vs explicit
// balls; flat bin table ops).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "core/greedy.hpp"
#include "core/modcapped.hpp"
#include "core/oracle.hpp"
#include "queueing/aged_pool.hpp"
#include "queueing/bin_table.hpp"
#include "rng/alias.hpp"
#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "io/cli.hpp"
#include "rng/bounded.hpp"
#include "rng/philox.hpp"
#include "rng/simd.hpp"
#include "rng/xoshiro256.hpp"
#include "telemetry/export.hpp"
#include "telemetry/phase_timers.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/round_trace.hpp"

namespace {

using namespace iba;

void BM_Xoshiro256pp(benchmark::State& state) {
  core::Engine engine(1);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += engine();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Xoshiro256pp);

void BM_Philox4x32(benchmark::State& state) {
  rng::Philox4x32 engine(1);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += engine();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Philox4x32);

void BM_BoundedDraw(benchmark::State& state) {
  core::Engine engine(1);
  const auto range = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng::bounded(engine, range);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BoundedDraw)->Arg(1 << 10)->Arg(1 << 15)->Arg((1 << 20) + 7);

// The batched bounded-draw backends head-to-head on the kernel's real
// workload shape (one draw per thrown ball, awkward non-power-of-two
// range). Arg is the batch length; range(1) selects the backend.
void BM_FillBounded(benchmark::State& state) {
  const auto backend = static_cast<rng::SimdBackend>(state.range(1));
  if (backend == rng::SimdBackend::kAvx2 && !rng::avx2_supported()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  rng::set_simd_backend(backend);
  core::Engine engine(9);
  std::vector<std::uint32_t> out(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t range = 10'000'000;  // n = 10^7, rejection path live
  std::uint64_t draws = 0;
  for (auto _ : state) {
    rng::fill_bounded(engine, std::span<std::uint32_t>(out), range);
    draws += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  rng::reset_simd_backend();
  state.counters["draws/s"] = benchmark::Counter(
      static_cast<double>(draws), benchmark::Counter::kIsRate);
  state.SetLabel(backend == rng::SimdBackend::kAvx2 ? "avx2" : "scalar");
}
BENCHMARK(BM_FillBounded)
    ->Args({1 << 16, static_cast<int>(rng::SimdBackend::kScalar)})
    ->Args({1 << 16, static_cast<int>(rng::SimdBackend::kAvx2)})
    ->Args({1 << 20, static_cast<int>(rng::SimdBackend::kScalar)})
    ->Args({1 << 20, static_cast<int>(rng::SimdBackend::kAvx2)});

// Pass-A scatter serial vs parallel: the bin-major kernel's accept
// phase at shards = 1 runs the serial counting sort, shards > 1 the
// staged parallel partition. Phase timers isolate the accept cost from
// throw/delete.
void BM_CappedScatter(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  core::CappedConfig config;
  config.n = 1 << 16;
  config.capacity = 2;
  config.lambda_n = config.n - config.n / 16;  // λ = 15/16
  config.kernel = core::RoundKernel::kBinMajor;
  config.shards = shards;
  core::Capped process(config, core::Engine(11));
  for (int i = 0; i < 300; ++i) (void)process.step();

  telemetry::PhaseTimers timers;
  process.set_phase_timers(&timers);
  std::uint64_t balls = 0;
  for (auto _ : state) balls += process.step().thrown;
  process.set_phase_timers(nullptr);
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
  state.counters["accept_ns/ball"] =
      timers.ns_per_ball(telemetry::Phase::kAccept);
  state.SetLabel(shards == 1 ? "serial" : "parallel");
}
BENCHMARK(BM_CappedScatter)->Arg(1)->Arg(2)->Arg(4);

void BM_BinTablePushPop(benchmark::State& state) {
  queueing::BinTable bins(1 << 10, 4);
  std::uint32_t bin = 0;
  for (auto _ : state) {
    bins.push(bin, 1);
    benchmark::DoNotOptimize(bins.pop_front(bin));
    bin = (bin + 1) & ((1 << 10) - 1);
  }
}
BENCHMARK(BM_BinTablePushPop);

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> weights(1 << 13);
  core::Engine seed_engine(5);
  for (auto& w : weights) w = 1.0 + rng::uniform01(seed_engine) * 3.0;
  const rng::AliasTable table(weights);
  core::Engine engine(6);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += table.sample(engine);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AliasSample);

void BM_P2QuantileAdd(benchmark::State& state) {
  stats::P2Quantile p99(0.99);
  core::Engine engine(7);
  for (auto _ : state) p99.add(rng::uniform01(engine));
  benchmark::DoNotOptimize(p99.value());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_Log2HistogramAdd(benchmark::State& state) {
  stats::Log2Histogram histogram;
  core::Engine engine(8);
  for (auto _ : state) histogram.add(engine() >> 48);
  benchmark::DoNotOptimize(histogram.total());
}
BENCHMARK(BM_Log2HistogramAdd);

void BM_AgedPoolCycle(benchmark::State& state) {
  queueing::AgedPool pool;
  std::uint64_t label = 0;
  for (auto _ : state) {
    ++label;
    pool.add(label, 64);
    if (pool.total() > 4096) pool.clear();
    benchmark::DoNotOptimize(pool.total());
  }
}
BENCHMARK(BM_AgedPoolCycle);

// Steady-state per-round cost of CAPPED(c, λ). Counters report ns/ball.
void BM_CappedRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto c = static_cast<std::uint32_t>(state.range(1));
  core::CappedConfig config;
  config.n = n;
  config.capacity = c;
  config.lambda_n = n - n / 16;  // λ = 15/16
  core::Capped process(config, core::Engine(7));
  for (int i = 0; i < 2000; ++i) (void)process.step();  // reach steady state

  std::uint64_t balls = 0;
  for (auto _ : state) {
    const auto m = process.step();
    balls += m.thrown;
  }
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CappedRound)
    ->Args({1 << 10, 1})
    ->Args({1 << 13, 1})
    ->Args({1 << 13, 3})
    ->Args({1 << 15, 3});

// Same workload with every telemetry instrument attached (registry
// counters + phase timers + round trace). Comparing balls/s against
// BM_CappedRound gives the enabled-telemetry overhead; building with
// -DIBA_TELEMETRY=OFF and re-running gives the compiled-out cost.
void BM_CappedRoundTelemetry(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::CappedConfig config;
  config.n = n;
  config.capacity = 3;
  config.lambda_n = n - n / 16;
  core::Capped process(config, core::Engine(7));
  for (int i = 0; i < 2000; ++i) (void)process.step();

  telemetry::Registry registry;
  telemetry::PhaseTimers timers;
  telemetry::RoundTrace trace(1024);
  process.set_phase_timers(&timers);
  auto& rounds = registry.counter("rounds_total");
  auto& thrown = registry.counter("balls_thrown_total");
  auto& pool_hist = registry.histogram("pool_size_rounds");

  std::uint64_t balls = 0;
  for (auto _ : state) {
    const auto m = process.step();
    rounds.inc();
    thrown.inc(m.thrown);
    pool_hist.observe(m.pool_size);
    (void)trace.try_push({m, 0});
    telemetry::RoundEvent drained;
    (void)trace.try_pop(drained);
    balls += m.thrown;
  }
  process.set_phase_timers(nullptr);
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
  state.counters["throw_ns/ball"] =
      timers.ns_per_ball(telemetry::Phase::kThrow);
  state.counters["accept_ns/ball"] =
      timers.ns_per_ball(telemetry::Phase::kAccept);
}
BENCHMARK(BM_CappedRoundTelemetry)->Arg(1 << 13);

void BM_TelemetryCounterInc(benchmark::State& state) {
  telemetry::Registry registry;
  auto& counter = registry.counter("bench");
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_TelemetryCounterInc);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  telemetry::Registry registry;
  auto& histogram = registry.histogram("bench");
  std::uint64_t v = 0;
  for (auto _ : state) histogram.observe(v++ & 0xFFFF);
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_RoundTracePushPop(benchmark::State& state) {
  telemetry::RoundTrace trace(1024);
  telemetry::RoundEvent event{};
  for (auto _ : state) {
    (void)trace.try_push(event);
    (void)trace.try_pop(event);
  }
  benchmark::DoNotOptimize(trace.dropped());
}
BENCHMARK(BM_RoundTracePushPop);

// Ablation: the explicit-ball oracle on the same workload (small n only —
// it is O(m log m) per round).
void BM_OracleCappedRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::CappedConfig config;
  config.n = n;
  config.capacity = 1;
  config.lambda_n = n - n / 16;
  core::OracleCapped process(config, core::Engine(7));
  for (int i = 0; i < 500; ++i) (void)process.step();

  std::uint64_t balls = 0;
  for (auto _ : state) {
    const auto m = process.step();
    balls += m.thrown;
  }
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OracleCappedRound)->Arg(1 << 10);

void BM_ModCappedRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::ModCappedConfig config;
  config.n = n;
  config.capacity = 3;
  config.lambda_n = n - n / 16;
  core::ModCapped process(config, core::Engine(7));
  for (int i = 0; i < 200; ++i) (void)process.step();

  std::uint64_t balls = 0;
  for (auto _ : state) {
    const auto m = process.step();
    balls += m.thrown;
  }
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModCappedRound)->Arg(1 << 10)->Arg(1 << 13);

void BM_BatchGreedyRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d = static_cast<std::uint32_t>(state.range(1));
  core::BatchGreedyConfig config;
  config.n = n;
  config.d = d;
  config.lambda_n = n / 2;  // moderate λ keeps queues (and memory) bounded
  core::BatchGreedy process(config, core::Engine(7));
  for (int i = 0; i < 500; ++i) (void)process.step();

  std::uint64_t balls = 0;
  for (auto _ : state) {
    const auto m = process.step();
    balls += m.thrown;
  }
  state.counters["balls/s"] = benchmark::Counter(
      static_cast<double>(balls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchGreedyRound)->Args({1 << 13, 1})->Args({1 << 13, 2});

/// ns per bounded draw of `backend` over repeated length-2^20 batches
/// (0 when the backend is unavailable here).
double time_fill_bounded_ns(rng::SimdBackend backend) {
  if (backend == rng::SimdBackend::kAvx2 && !rng::avx2_supported()) {
    return 0.0;
  }
  rng::set_simd_backend(backend);
  core::Engine engine(9);
  std::vector<std::uint32_t> out(1u << 20);
  const std::uint64_t range = 10'000'000;
  rng::fill_bounded(engine, std::span<std::uint32_t>(out), range);  // warm
  const int reps = 20;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    rng::fill_bounded(engine, std::span<std::uint32_t>(out), range);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  rng::reset_simd_backend();
  benchmark::DoNotOptimize(out.data());
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
             .count() *
         1e9 / (static_cast<double>(reps) * static_cast<double>(out.size()));
}

/// Accept-phase ns/ball of the bin-major kernel at `shards` (serial
/// counting sort at 1, staged parallel partition above).
double time_scatter_accept_ns(std::uint32_t shards) {
  core::CappedConfig config;
  config.n = 1 << 16;
  config.capacity = 2;
  config.lambda_n = config.n - config.n / 16;
  config.kernel = core::RoundKernel::kBinMajor;
  config.shards = shards;
  core::Capped process(config, core::Engine(11));
  for (int i = 0; i < 300; ++i) (void)process.step();
  telemetry::PhaseTimers timers;
  process.set_phase_timers(&timers);
  for (int i = 0; i < 200; ++i) (void)process.step();
  process.set_phase_timers(nullptr);
  return timers.ns_per_ball(telemetry::Phase::kAccept);
}

// Runs the canonical CAPPED workload with phase timers attached and
// writes the per-phase ns/ball numbers as a telemetry snapshot — the
// machine-readable counterpart of the BM_Capped* console output — plus
// the fill_bounded scalar-vs-SIMD and scatter serial-vs-parallel rows.
void write_phase_json(const std::string& path) {
  core::CappedConfig config;
  config.n = 1 << 13;
  config.capacity = 3;
  config.lambda_n = config.n - config.n / 16;  // λ = 15/16
  core::Capped process(config, core::Engine(7));
  for (int i = 0; i < 2000; ++i) (void)process.step();

  telemetry::PhaseTimers timers;
  process.set_phase_timers(&timers);
  for (int i = 0; i < 500; ++i) (void)process.step();
  process.set_phase_timers(nullptr);

  telemetry::Registry registry;
  registry.gauge("bench_micro_n").set(config.n);
  registry.gauge("bench_micro_capacity").set(config.capacity);
  registry.gauge("bench_micro_lambda_n").set(config.lambda_n);
  registry.gauge("fill_bounded_scalar_ns_per_draw")
      .set(time_fill_bounded_ns(rng::SimdBackend::kScalar));
  registry.gauge("fill_bounded_avx2_ns_per_draw")
      .set(time_fill_bounded_ns(rng::SimdBackend::kAvx2));
  registry.gauge("scatter_serial_accept_ns_per_ball")
      .set(time_scatter_accept_ns(1));
  registry.gauge("scatter_parallel_accept_ns_per_ball")
      .set(time_scatter_accept_ns(4));
  telemetry::record_phase_timers(registry, timers);
  if (telemetry::write_snapshot_file(registry, path)) {
    std::printf("phase timings written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  }
}

}  // namespace

// Custom main: accepts --json <file> / --json=<file> and --force [true]
// alongside the standard google-benchmark flags (which would reject an
// unknown flag). --json goes through the shared overwrite guard.
int main(int argc, char** argv) {
  std::string json_path;
  bool force = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--force") == 0) {
      force = true;
      // Optional explicit value, matching ArgParser's bool style.
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "true") == 0 ||
                           std::strcmp(argv[i + 1], "false") == 0)) {
        force = std::strcmp(argv[++i], "true") == 0;
      }
    } else if (std::strncmp(argv[i], "--force=", 8) == 0) {
      force = std::strcmp(argv[i] + 8, "true") == 0;
    } else {
      args.push_back(argv[i]);
    }
  }
  iba::io::guard_overwrite(json_path, force, "--json");
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_phase_json(json_path);
  return 0;
}
