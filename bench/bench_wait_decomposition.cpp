// E19 — waiting-time *decomposition*: how much of a ball's wait is spent
// bouncing in the pool (rejected throws) versus queued inside a bin?
// The theorems bound the total wait; the MODCAPPED coupling treats the
// two phases separately, and the c = 2..3 sweet spot is exactly the
// trade-off between them: c = 1 wastes rounds on pool retries (high
// rejection rate), large c wastes rounds queued behind buffered balls.
//
// This bench traces sampled balls through CAPPED(c) for c = 1..6 and
// reports the exact mean / p99 of total wait, pool time, and bin-queue
// time per c — the figure no aggregate histogram can produce.
//
// Expected shape: pool time falls monotonically in c (more buffer, fewer
// rejections) while bin-queue time grows roughly linearly (FIFO depth);
// their sum is minimized around c = 2..3.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "telemetry/ball_trace.hpp"

namespace {

using namespace iba;

struct Decomposition {
  std::uint64_t spans = 0;
  double wait_mean = 0.0, pool_mean = 0.0, binq_mean = 0.0;
  double wait_p99 = 0.0, pool_p99 = 0.0, binq_p99 = 0.0;
};

double exact_p99(std::vector<double>& values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t rank =
      static_cast<std::size_t>(0.99 * static_cast<double>(values.size()));
  return values[std::min(rank, values.size() - 1)];
}

Decomposition decompose(const std::deque<telemetry::BallSpan>& spans) {
  Decomposition d;
  std::vector<double> waits, pools, binqs;
  waits.reserve(spans.size());
  pools.reserve(spans.size());
  binqs.reserve(spans.size());
  for (const telemetry::BallSpan& span : spans) {
    waits.push_back(static_cast<double>(span.wait()));
    pools.push_back(static_cast<double>(span.pool_rounds));
    binqs.push_back(static_cast<double>(span.bin_rounds));
    d.wait_mean += waits.back();
    d.pool_mean += pools.back();
    d.binq_mean += binqs.back();
  }
  d.spans = spans.size();
  if (d.spans > 0) {
    const auto count = static_cast<double>(d.spans);
    d.wait_mean /= count;
    d.pool_mean /= count;
    d.binq_mean /= count;
  }
  d.wait_p99 = exact_p99(waits);
  d.pool_p99 = exact_p99(pools);
  d.binq_p99 = exact_p99(binqs);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_wait_decomposition",
                       "pool-time vs bin-queue-time split of the wait, "
                       "per capacity c");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::uint64_t lambda_n =
      static_cast<std::uint64_t>(options.n) - (options.n >> 6);  // 1−2^−6
  const double lambda =
      static_cast<double>(lambda_n) / static_cast<double>(options.n);
  // --trace-sample overrides; the default traces enough balls for a
  // stable p99 without holding every ball of the run.
  const double sample_rate =
      options.trace_sample > 0.0 ? options.trace_sample : 0.01;

  io::Table table({"c", "spans", "wait mean", "wait p99", "pool mean",
                   "pool p99", "binq mean", "binq p99", "pool share"});
  table.set_title("Waiting-time decomposition (rounds), lambda = 1-2^-6");
  std::vector<std::vector<double>> csv_rows;

  for (std::uint32_t c = 1; c <= 6; ++c) {
    const sim::SimConfig config = bench::make_cell(options, c, lambda_n);
    telemetry::log_info("cell_start", {{"cell", config.label()},
                                       {"burn_in", config.burn_in},
                                       {"rounds", config.measure_rounds},
                                       {"sample_rate", sample_rate}});

    telemetry::BallTraceConfig trace_config;
    trace_config.seed = config.seed;
    trace_config.sample_rate = sample_rate;
    trace_config.completed_capacity = 1u << 20;
    telemetry::BallTracer tracer(trace_config);

    sim::RunTelemetry telemetry;
    telemetry.registry = &bench::bench_registry();
    telemetry.ball_trace = &tracer;
    (void)sim::run_capped(config, sim::RunSpec::from_config(config),
                          telemetry);

    const Decomposition d = decompose(tracer.completed());
    if (tracer.dropped() > 0) {
      telemetry::log_warn("spans_dropped",
                          {{"cell", config.label()},
                           {"dropped", tracer.dropped()},
                           {"hint", "raise completed_capacity or lower "
                                    "--trace-sample"}});
    }
    const double pool_share =
        d.wait_mean > 0.0 ? d.pool_mean / d.wait_mean : 0.0;
    table.add_row({std::to_string(c), std::to_string(d.spans),
                   io::Table::format_number(d.wait_mean),
                   io::Table::format_number(d.wait_p99),
                   io::Table::format_number(d.pool_mean),
                   io::Table::format_number(d.pool_p99),
                   io::Table::format_number(d.binq_mean),
                   io::Table::format_number(d.binq_p99),
                   io::Table::format_number(pool_share)});
    csv_rows.push_back({static_cast<double>(c), lambda,
                        static_cast<double>(d.spans), d.wait_mean, d.wait_p99,
                        d.pool_mean, d.pool_p99, d.binq_mean, d.binq_p99,
                        pool_share});
  }

  bench::emit(table, options, "wait_decomposition",
              {"c", "lambda", "spans", "wait_mean", "wait_p99", "pool_mean",
               "pool_p99", "binq_mean", "binq_p99", "pool_share"},
              csv_rows);
  return 0;
}
