// E8 — the analysis machinery, executed: couples CAPPED(c, λ) with
// MODCAPPED(c, λ) per Lemmas 1/6 and reports (i) that the dominance
// invariants m^C ≤ m^M and ℓ_i^C ≤ ℓ_i^M never break, and (ii) how
// MODCAPPED's pool compares to its Lemma-7 2m* bound and to CAPPED's.
//
// Expected shape (paper): zero violations; MODCAPPED's pool hovers near
// m* (its forced floor) and stays far below 2m*; CAPPED's pool sits
// below MODCAPPED's, showing the coupling's slack.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/coupled.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_modcapped",
                       "coupled CAPPED/MODCAPPED dominance + Lemma 7 bound");
  bench::add_standard_flags(parser);
  parser.add_flag("coupled-rounds", "rounds per coupled run", "3000");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  auto options = bench::read_standard_flags(parser);
  // MODCAPPED throws ≥ m* ≈ 6cn balls per round; keep the default cell
  // size moderate so the bench stays quick.
  if (!parser.provided("n")) options.n = 1u << 10;
  const std::uint64_t rounds = parser.get_uint("coupled-rounds");

  const std::vector<std::uint32_t> capacities = {1, 2, 3};
  const std::vector<std::uint32_t> lambda_exponents = {2, 6};

  io::Table table({"lambda", "c", "violations", "pool_C_avg", "pool_M_avg",
                   "m_star", "pool_M_max", "2m_star", "below_2m*"});
  table.set_title("Coupled CAPPED/MODCAPPED (Lemmas 1/6/7, executable)");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t i : lambda_exponents) {
    if ((static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) {
      std::fprintf(stderr, "[skip] lambda=1-2^-%u needs 2^%u | n\n", i, i);
      continue;
    }
    for (const std::uint32_t c : capacities) {
      core::CappedConfig config;
      config.n = options.n;
      config.capacity = c;
      config.lambda_n = sim::lambda_n_for(options.n, i);
      std::fprintf(stderr, "[cell] coupled n=%u c=%u i=%u rounds=%llu ...\n",
                   options.n, c, i,
                   static_cast<unsigned long long>(rounds));

      core::CoupledRun coupled(config, core::Engine(options.seed));
      double pool_c_sum = 0, pool_m_sum = 0;
      std::uint64_t pool_m_max = 0;
      for (std::uint64_t t = 0; t < rounds; ++t) {
        const auto step = coupled.step();
        pool_c_sum += static_cast<double>(step.capped.pool_size);
        pool_m_sum += static_cast<double>(step.modcapped.pool_size);
        if (step.modcapped.pool_size > pool_m_max) {
          pool_m_max = step.modcapped.pool_size;
        }
      }
      const double m_star = static_cast<double>(coupled.modcapped().m_star());
      const double lambda = config.lambda();
      const auto violations = static_cast<double>(coupled.violations());
      const double pool_c_avg = pool_c_sum / static_cast<double>(rounds);
      const double pool_m_avg = pool_m_sum / static_cast<double>(rounds);

      table.add_row({io::Table::format_number(lambda),
                     io::Table::format_number(c),
                     io::Table::format_number(violations),
                     io::Table::format_number(pool_c_avg),
                     io::Table::format_number(pool_m_avg),
                     io::Table::format_number(m_star),
                     io::Table::format_number(
                         static_cast<double>(pool_m_max)),
                     io::Table::format_number(2 * m_star),
                     pool_m_max < 2 * m_star ? "yes" : "NO"});
      csv_rows.push_back({lambda, static_cast<double>(c), violations,
                          pool_c_avg, pool_m_avg, m_star,
                          static_cast<double>(pool_m_max), 2 * m_star});
    }
  }

  bench::emit(table, options, "modcapped",
              {"lambda", "c", "violations", "pool_C_avg", "pool_M_avg",
               "m_star", "pool_M_max", "two_m_star"},
              csv_rows);
  return 0;
}
