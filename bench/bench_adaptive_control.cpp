// E24 — adaptive control plane under non-stationary load
// (BENCH_control.json, docs/CONTROL.md).
//
// Three workloads stress the controller the way a real deployment
// would: a λ step (0.70 → 0.98 mid-run), a linear ramp over the same
// range, and a periodic burst pattern. For each workload the bench
// first sweeps fixed capacities c ∈ [1, 6] to find the offline-best
// configuration (smallest steady-state mean wait over the final
// quarter of the run), then runs the adaptive policies — static (the
// inert baseline, pinned at the under-provisioned c = 1), sweet-spot,
// and aimd — from the same cold start and compares.
//
// The headline check (EXPERIMENTS.md E24): the sweet-spot policy must
// land within ±1 of the offline-best fixed capacity and hold its tail
// mean wait within 10% of the offline-best run's.
//
//   ./bench_adaptive_control                 # full size: n = 2^14
//   ./bench_adaptive_control --quick true    # CI smoke: n = 2^11

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "control/policy.hpp"
#include "core/capped.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "telemetry/log.hpp"

namespace {

using iba::control::ControlConfig;
using iba::control::Policy;
using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::Engine;
using iba::core::RoundKernel;

/// Arrival rate at round t of the measured horizon, per workload.
double workload_lambda(const std::string& kind, std::uint64_t t,
                       std::uint64_t horizon) {
  if (kind == "step") {
    return t < horizon / 2 ? 0.70 : 0.98;
  }
  if (kind == "ramp") {
    return 0.70 +
           0.28 * static_cast<double>(t) / static_cast<double>(horizon);
  }
  // burst: calm baseline with every fourth 250-round slab at the peak.
  return (t / 250) % 4 == 3 ? 0.98 : 0.75;
}

struct RunResult {
  double tail_wait_mean = 0.0;
  std::uint64_t tail_wait_max = 0;
  double tail_pool_mean = 0.0;
  std::uint32_t final_capacity = 0;
  std::uint64_t changes = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  double lambda_hat = 0.0;
};

/// Drives one process through burn-in plus the workload and measures
/// the final-quarter tail, where every workload has settled into the
/// regime the offline-best comparison is about.
RunResult run_one(std::uint32_t n, std::uint64_t seed, std::uint64_t burn_in,
                  std::uint64_t horizon, const std::string& kind,
                  std::uint32_t capacity, const ControlConfig& control) {
  CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = static_cast<std::uint64_t>(
      std::llround(workload_lambda(kind, 0, horizon) * n));
  config.kernel = RoundKernel::kBinMajor;
  config.control = control;
  Capped process(config, Engine(seed));

  const std::uint64_t tail_start = burn_in + (horizon * 3) / 4;
  RunResult result;
  std::uint64_t pool_sum = 0;
  std::uint64_t pool_rounds = 0;
  for (std::uint64_t t = 0; t < burn_in + horizon; ++t) {
    const std::uint64_t w = t < burn_in ? 0 : t - burn_in;
    process.set_lambda_n(static_cast<std::uint64_t>(
        std::llround(workload_lambda(kind, w, horizon) * n)));
    if (t == tail_start) process.reset_wait_stats();
    const auto m = process.step();
    if (t >= tail_start) {
      pool_sum += m.pool_size;
      ++pool_rounds;
    }
  }
  result.tail_wait_mean = process.waits().mean();
  result.tail_wait_max = process.waits().max();
  result.tail_pool_mean = pool_rounds > 0 ? static_cast<double>(pool_sum) /
                                                static_cast<double>(pool_rounds)
                                          : 0.0;
  result.final_capacity = process.capacity();
  if (const auto* controller = process.controller(); controller != nullptr) {
    result.changes = controller->changes_total();
    result.grows = controller->grows_total();
    result.shrinks = controller->shrinks_total();
    result.lambda_hat = controller->estimator().lambda_ewma();
  }
  return result;
}

struct PolicyRow {
  Policy policy;
  RunResult run;
  bool capacity_converged = false;
  bool wait_within_10pct = false;
};

}  // namespace

int main(int argc, char** argv) {
  iba::io::ArgParser parser(
      "bench_adaptive_control",
      "adaptive capacity control vs offline-best fixed c under λ step / "
      "ramp / burst (BENCH_control.json)");
  parser.add_flag("n", "number of bins", "16384");
  parser.add_flag("horizon", "measured rounds per workload", "4000");
  parser.add_flag("burnin", "warm-up rounds at the workload's initial λ",
                  "200");
  parser.add_flag("seed", "master seed", "2024");
  parser.add_flag("c-max", "controller capacity ceiling", "8");
  parser.add_flag("window", "estimator window, rounds", "128");
  parser.add_flag("cooldown", "min rounds between capacity changes", "64");
  parser.add_flag("quick",
                  "CI smoke mode: n = 2048, horizon 1200, window 48, "
                  "cooldown 24",
                  "false");
  parser.add_flag("json", "output path for machine-readable results",
                  "BENCH_control.json");
  if (!parser.parse_or_exit(argc, argv)) return 2;

  std::uint32_t n;
  std::uint64_t horizon;
  std::uint64_t burn_in;
  std::uint64_t seed;
  ControlConfig base_control;
  bool quick;
  std::string json_path;
  try {
    n = static_cast<std::uint32_t>(parser.get_uint_range("n", 2, 1u << 28));
    horizon = parser.get_uint_range("horizon", 8, UINT64_MAX);
    burn_in = parser.get_uint("burnin");
    seed = parser.get_uint("seed");
    base_control.c_max =
        static_cast<std::uint32_t>(parser.get_uint_range("c-max", 1, 65535));
    base_control.window =
        static_cast<std::uint32_t>(parser.get_uint_range("window", 1, 65536));
    base_control.cooldown = static_cast<std::uint32_t>(
        parser.get_uint_range("cooldown", 1, 1u << 20));
    quick = parser.get_bool("quick");
    json_path = parser.get("json");
  } catch (const iba::io::UsageError& e) {
    iba::io::fail_usage(e.what());
  }
  if (quick) {
    if (!parser.provided("n")) n = 1u << 11;
    if (!parser.provided("horizon")) horizon = 1200;
    if (!parser.provided("window")) base_control.window = 48;
    if (!parser.provided("cooldown")) base_control.cooldown = 24;
  }

  const std::vector<std::string> workloads = {"step", "ramp", "burst"};
  const std::vector<std::uint32_t> fixed_sweep = {1, 2, 3, 4, 5, 6};
  const std::vector<Policy> policies = {Policy::kStatic, Policy::kSweetSpot,
                                        Policy::kAimd};
  const std::uint32_t start_capacity = 1;  // cold start, under-provisioned

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    iba::telemetry::log_error("json_open_failed", {{"path", json_path}});
    return 1;
  }
  iba::io::JsonWriter json(out);
  json.begin_object();
  json.key("bench").value("adaptive_control");
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("horizon").value(horizon);
  json.key("burn_in").value(burn_in);
  json.key("seed").value(seed);
  json.key("quick").value(quick);
  json.key("start_capacity").value(static_cast<std::uint64_t>(start_capacity));
  json.key("control").begin_object();
  json.key("c_max").value(static_cast<std::uint64_t>(base_control.c_max));
  json.key("window").value(static_cast<std::uint64_t>(base_control.window));
  json.key("cooldown").value(static_cast<std::uint64_t>(base_control.cooldown));
  json.key("hysteresis").value(base_control.hysteresis);
  json.end_object();
  json.key("workloads").begin_array();

  bool sweet_spot_ok = true;
  std::printf("adaptive control  n=%u horizon=%llu  c_max=%u window=%u "
              "cooldown=%u\n",
              n, static_cast<unsigned long long>(horizon), base_control.c_max,
              base_control.window, base_control.cooldown);
  for (const std::string& kind : workloads) {
    // The 10 % wait budget is a *steady-state* criterion: step and ramp
    // end in a long stationary phase, but burst keeps switching λ inside
    // the measured tail, so every adaptation there is a transition the
    // offline-fixed yardstick never pays. For burst the budget is
    // reported (the flapping cost is the measurement) but only capacity
    // convergence is enforced.
    const bool steady_tail = kind != "burst";
    // Offline-best fixed capacity: the yardstick adaptation must match.
    std::vector<RunResult> fixed;
    std::size_t best = 0;
    for (std::size_t i = 0; i < fixed_sweep.size(); ++i) {
      fixed.push_back(run_one(n, seed, burn_in, horizon, kind, fixed_sweep[i],
                              ControlConfig{}));
      if (fixed[i].tail_wait_mean < fixed[best].tail_wait_mean) best = i;
    }
    const std::uint32_t best_c = fixed_sweep[best];
    const double best_wait = fixed[best].tail_wait_mean;

    std::vector<PolicyRow> rows;
    for (const Policy policy : policies) {
      ControlConfig control = base_control;
      control.policy = policy;
      PolicyRow row;
      row.policy = policy;
      row.run = run_one(n, seed, burn_in, horizon, kind, start_capacity,
                        control);
      const std::uint32_t final_c = row.run.final_capacity;
      row.capacity_converged =
          final_c + 1 >= best_c && final_c <= best_c + 1;
      row.wait_within_10pct = row.run.tail_wait_mean <= 1.10 * best_wait;
      rows.push_back(row);
      if (policy == Policy::kSweetSpot &&
          (!row.capacity_converged ||
           (steady_tail && !row.wait_within_10pct))) {
        sweet_spot_ok = false;
        iba::telemetry::log_warn(
            "sweet_spot_divergence",
            {{"workload", std::string_view(kind)},
             {"final_capacity", static_cast<std::uint64_t>(final_c)},
             {"best_fixed_c", static_cast<std::uint64_t>(best_c)},
             {"tail_wait_mean", row.run.tail_wait_mean},
             {"best_fixed_wait", best_wait}});
      }
    }

    std::printf("  %-5s offline-best fixed c=%u (tail wait %.3f)\n",
                kind.c_str(), best_c, best_wait);
    for (const PolicyRow& row : rows) {
      std::string marker;
      if (row.capacity_converged && row.wait_within_10pct) {
        marker = "  [converged]";
      } else if (row.capacity_converged && !steady_tail &&
                 row.run.changes > 0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "  [capacity ok; flapping cost +%.0f%%]",
                      100.0 * (row.run.tail_wait_mean / best_wait - 1.0));
        marker = buf;
      }
      std::printf("    %-10s final c=%u  tail wait %.3f  pool %.0f  "
                  "changes %llu (+%llu/-%llu)  lambda_hat %.3f%s\n",
                  std::string(iba::control::to_string(row.policy)).c_str(),
                  row.run.final_capacity, row.run.tail_wait_mean,
                  row.run.tail_pool_mean,
                  static_cast<unsigned long long>(row.run.changes),
                  static_cast<unsigned long long>(row.run.grows),
                  static_cast<unsigned long long>(row.run.shrinks),
                  row.run.lambda_hat, marker.c_str());
    }

    json.begin_object();
    json.key("workload").value(kind);
    json.key("steady_tail").value(steady_tail);
    json.key("best_fixed_c").value(static_cast<std::uint64_t>(best_c));
    json.key("best_fixed_wait").value(best_wait);
    json.key("fixed").begin_array();
    for (std::size_t i = 0; i < fixed_sweep.size(); ++i) {
      json.begin_object();
      json.key("capacity").value(static_cast<std::uint64_t>(fixed_sweep[i]));
      json.key("tail_wait_mean").value(fixed[i].tail_wait_mean);
      json.key("tail_pool_mean").value(fixed[i].tail_pool_mean);
      json.end_object();
    }
    json.end_array();
    json.key("policies").begin_array();
    for (const PolicyRow& row : rows) {
      json.begin_object();
      json.key("policy").value(iba::control::to_string(row.policy));
      json.key("final_capacity")
          .value(static_cast<std::uint64_t>(row.run.final_capacity));
      json.key("changes").value(row.run.changes);
      json.key("grows").value(row.run.grows);
      json.key("shrinks").value(row.run.shrinks);
      json.key("lambda_hat").value(row.run.lambda_hat);
      json.key("tail_wait_mean").value(row.run.tail_wait_mean);
      json.key("tail_wait_max").value(row.run.tail_wait_max);
      json.key("tail_pool_mean").value(row.run.tail_pool_mean);
      json.key("capacity_converged").value(row.capacity_converged);
      json.key("wait_within_10pct").value(row.wait_within_10pct);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("sweet_spot_ok").value(sweet_spot_ok);
  json.end_object();
  out << "\n";
  iba::telemetry::log_info("bench_json_written", {{"path", json_path}});
  std::printf("  sweet-spot convergence: %s\n",
              sweet_spot_ok ? "ok" : "DIVERGED (see log)");
  return 0;
}
