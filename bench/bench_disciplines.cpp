// E13 — design ablations: (a) the deletion discipline (the paper's FIFO
// vs LIFO vs uniform-random service) and (b) the acceptance order (the
// paper's oldest-first preference vs the youngest-first inversion).
//
// Expected shape: the pool size is invariant under both axes (they
// permute which balls survive/serve, not how many), while the *maximum*
// waiting time degrades sharply for LIFO service and youngest-first
// acceptance — demonstrating that the paper's age preference is exactly
// what buys the log log n tail.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/capped.hpp"

namespace {

iba::sim::RunResult run_variant(const iba::bench::BenchOptions& options,
                                const iba::sim::SimConfig& cell,
                                iba::core::DeletionDiscipline deletion,
                                iba::core::AcceptanceOrder acceptance) {
  using namespace iba;
  core::CappedConfig config = cell.to_capped();
  config.deletion = deletion;
  config.acceptance = acceptance;
  std::fprintf(stderr, "[cell] %s del=%s acc=%s ...\n", cell.label().c_str(),
               std::string(core::to_string(deletion)).c_str(),
               std::string(core::to_string(acceptance)).c_str());
  core::Capped process(config, core::Engine(options.seed));
  return sim::run_experiment(process, sim::RunSpec::from_config(cell));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser(
      "bench_disciplines",
      "deletion-discipline and acceptance-order ablations of CAPPED");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::uint32_t i = 6;  // λ = 1 − 2^−6: enough pressure to separate
  const std::uint32_t c = 3;
  const auto cell = bench::make_cell(options, c, sim::lambda_n_for(options.n, i));

  struct Variant {
    const char* name;
    core::DeletionDiscipline deletion;
    core::AcceptanceOrder acceptance;
  };
  const std::vector<Variant> variants = {
      {"paper (fifo, oldest-first)", core::DeletionDiscipline::kFifo,
       core::AcceptanceOrder::kOldestFirst},
      {"lifo service", core::DeletionDiscipline::kLifo,
       core::AcceptanceOrder::kOldestFirst},
      {"uniform service", core::DeletionDiscipline::kUniform,
       core::AcceptanceOrder::kOldestFirst},
      {"youngest-first acceptance", core::DeletionDiscipline::kFifo,
       core::AcceptanceOrder::kYoungestFirst},
      {"both inverted", core::DeletionDiscipline::kLifo,
       core::AcceptanceOrder::kYoungestFirst},
  };

  io::Table table({"variant", "pool/n", "wait_avg", "wait_p99<=",
                   "wait_max", "starve_age"});
  table.set_title("Service/acceptance ablations, lambda=1-2^-6, c=3");
  std::vector<std::vector<double>> csv_rows;
  double variant_id = 0;
  for (const Variant& variant : variants) {
    // Starvation depth: the worst oldest-pool-age over a fresh window
    // (measures how long the unluckiest *unallocated* ball lingered).
    core::CappedConfig config = cell.to_capped();
    config.deletion = variant.deletion;
    config.acceptance = variant.acceptance;
    core::Capped probe(config, core::Engine(options.seed + 1));
    for (std::uint64_t i = 0; i < cell.burn_in; ++i) (void)probe.step();
    std::uint64_t starve_age = 0;
    for (std::uint64_t i = 0; i < cell.measure_rounds; ++i) {
      starve_age = std::max(starve_age, probe.step().oldest_pool_age);
    }

    const auto result =
        run_variant(options, cell, variant.deletion, variant.acceptance);
    table.add_row({variant.name,
                   io::Table::format_number(result.normalized_pool.mean()),
                   io::Table::format_number(result.wait_mean),
                   io::Table::format_number(result.wait_p99_upper),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max)),
                   io::Table::format_number(
                       static_cast<double>(starve_age))});
    csv_rows.push_back({variant_id++, result.normalized_pool.mean(),
                        result.wait_mean, result.wait_p99_upper,
                        static_cast<double>(result.wait_max),
                        static_cast<double>(starve_age)});
  }

  bench::emit(table, options, "disciplines",
              {"variant", "pool_over_n", "wait_avg", "wait_p99_upper",
               "wait_max", "starve_age"},
              csv_rows);
  return 0;
}
