// E20 — exact vs simulated: the CAPPED(1, λ) pool process is a finite
// Markov chain with computable transitions (occupancy DP); this bench
// solves its stationary distribution exactly for small n and compares
// the simulator against it — mean and total-variation distance.
//
// Expected shape: TV distances at the noise floor of the simulated
// sample (≪ 0.05), means matching to three digits; the mean-field law
// (ln(1/(1−λ)) − λ)·n emerging as n grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/exact_chain.hpp"
#include "bench_common.hpp"
#include "core/capped.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_exact_chain",
                       "exact stationary pool distribution vs simulation");
  bench::add_standard_flags(parser);
  parser.add_flag("sim-rounds", "simulated rounds per cell", "100000");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto sim_rounds = parser.get_uint("sim-rounds");

  struct Cell {
    std::uint32_t n;
    std::uint64_t lambda_n;
  };
  const std::vector<Cell> cells = {{8, 4},  {8, 7},  {16, 12},
                                   {24, 21}, {32, 24}, {32, 31}};

  io::Table table({"n", "lambda", "exact_mean", "sim_mean", "tv_distance",
                   "meanfield*n"});
  table.set_title("Exact CAPPED(1, lambda) chain vs simulation");
  std::vector<std::vector<double>> csv_rows;

  for (const Cell& cell : cells) {
    const double lambda = static_cast<double>(cell.lambda_n) /
                          static_cast<double>(cell.n);
    // Truncate comfortably above the Theorem-1 support.
    const auto max_pool = static_cast<std::uint64_t>(
        analysis::pool_bound_thm1(cell.n, lambda));
    std::fprintf(stderr, "[cell] exact chain n=%u lambda=%.4f states=%llu\n",
                 cell.n, lambda,
                 static_cast<unsigned long long>(max_pool + 1));
    analysis::CappedUnitChain chain(cell.n, cell.lambda_n, max_pool);
    const auto pi = chain.stationary();
    const double exact_mean = analysis::CappedUnitChain::mean(pi);

    core::CappedConfig config;
    config.n = cell.n;
    config.capacity = 1;
    config.lambda_n = cell.lambda_n;
    core::Capped process(config, core::Engine(options.seed));
    for (int i = 0; i < 3000; ++i) (void)process.step();
    std::vector<double> empirical(pi.size(), 0.0);
    double sim_mean = 0;
    for (std::uint64_t i = 0; i < sim_rounds; ++i) {
      const auto pool = std::min<std::uint64_t>(process.step().pool_size,
                                                pi.size() - 1);
      ++empirical[pool];
      sim_mean += static_cast<double>(pool);
    }
    sim_mean /= static_cast<double>(sim_rounds);
    double tv = 0;
    for (std::size_t m = 0; m < pi.size(); ++m) {
      tv += std::abs(empirical[m] / static_cast<double>(sim_rounds) - pi[m]);
    }
    tv /= 2;

    const double mean_field =
        analysis::mean_field_pool_c1(lambda) * cell.n;
    table.add_row({io::Table::format_number(cell.n),
                   io::Table::format_number(lambda),
                   io::Table::format_number(exact_mean),
                   io::Table::format_number(sim_mean),
                   io::Table::format_number(tv),
                   io::Table::format_number(mean_field)});
    csv_rows.push_back({static_cast<double>(cell.n), lambda, exact_mean,
                        sim_mean, tv, mean_field});
  }

  bench::emit(table, options, "exact_chain",
              {"n", "lambda", "exact_mean", "sim_mean", "tv_distance",
               "meanfield_times_n"},
              csv_rows);
  return 0;
}
