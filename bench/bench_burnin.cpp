// E16 — burn-in calibration: the paper measures "a stabilized system
// after a burn-in phase of suitable length" without quantifying it.
// This bench traces the pool ramp from the empty start and measures the
// empirical relaxation time (rounds to reach 99% of the steady level),
// validating the 5/(1−λ) rule the other benches use and the mean-field
// prediction that relaxation scales like 1/(1−λ).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/capped.hpp"
#include "io/plot.hpp"
#include "scenario/arrival.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_burnin",
                       "relaxation time of CAPPED from the empty start");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::uint32_t c = 1;
  const std::vector<std::uint32_t> lambda_exponents = {2, 4, 6, 8};

  io::Table table({"lambda", "steady_pool/n", "rounds_to_99pct",
                   "1/(1-lambda)", "ratio", "suggested_burn_in"});
  table.set_title("Relaxation from empty start (c = 1)");
  std::vector<std::vector<double>> csv_rows;

  io::AsciiPlot plot(56, 12);
  plot.set_title("Pool ramp-up (pool/n vs round/relaxation-scale)");
  plot.set_x_label("round * (1-lambda)");

  for (const std::uint32_t i : lambda_exponents) {
    if ((static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) continue;
    const double lambda = sim::lambda_one_minus_2pow(i);
    const double slack = 1.0 - lambda;
    // The constant-λ workload as a declarative arrival model — identical
    // lambda_n to the historical sim::lambda_n_for quantization.
    const auto arrival = scenario::ArrivalModel::constant(lambda);
    arrival.validate(options.n);
    core::CappedConfig config;
    config.n = options.n;
    config.capacity = c;
    arrival.apply_to(options.n, config.arrival, config.lambda_n);
    std::fprintf(stderr, "[cell] ramp lambda=1-2^-%u ...\n", i);
    core::Capped process(config, core::Engine(options.seed));

    // Trace the ramp for 10 relaxation scales, then measure the steady
    // level over 2 more.
    const auto ramp_rounds =
        static_cast<std::uint64_t>(std::ceil(10.0 / slack));
    sim::TraceRecorder trace;
    for (std::uint64_t t = 0; t < ramp_rounds; ++t) {
      trace.observe(process.step());
    }
    double steady = 0;
    const auto steady_rounds =
        static_cast<std::uint64_t>(std::ceil(2.0 / slack));
    for (std::uint64_t t = 0; t < steady_rounds; ++t) {
      steady += static_cast<double>(process.step().pool_size);
    }
    steady /= static_cast<double>(steady_rounds);

    // First round at which the pool reaches 99% of the steady level.
    std::uint64_t t99 = ramp_rounds;
    for (std::size_t t = 0; t < trace.pool().size(); ++t) {
      if (trace.pool()[t] >= 0.99 * steady) {
        t99 = t + 1;
        break;
      }
    }

    table.add_row(
        {"1-2^-" + std::to_string(i),
         io::Table::format_number(steady / options.n),
         io::Table::format_number(static_cast<double>(t99)),
         io::Table::format_number(1.0 / slack),
         io::Table::format_number(static_cast<double>(t99) * slack),
         io::Table::format_number(
             static_cast<double>(sim::suggested_burn_in(lambda)))});
    csv_rows.push_back({lambda, steady / options.n,
                        static_cast<double>(t99), 1.0 / slack,
                        static_cast<double>(t99) * slack,
                        static_cast<double>(sim::suggested_burn_in(lambda))});

    // Normalized ramp curve (subsampled to ~25 points).
    std::vector<double> xs, ys;
    const std::size_t stride =
        std::max<std::size_t>(1, trace.pool().size() / 25);
    for (std::size_t t = 0; t < trace.pool().size(); t += stride) {
      xs.push_back(static_cast<double>(t + 1) * slack);
      ys.push_back(trace.pool()[t] / options.n / std::max(1e-9, steady /
                                                          options.n));
    }
    plot.add_series("lambda=1-2^-" + std::to_string(i), xs, ys);
  }

  plot.print();
  std::printf("\n");
  bench::emit(table, options, "burnin",
              {"lambda", "steady_pool_over_n", "rounds_to_99pct",
               "relaxation_scale", "ratio", "suggested_burn_in"},
              csv_rows);
  return 0;
}
