// E4 — Figure 5 (right): average and maximum waiting time as a function
// of λ = 1 − 2^(−i), i ∈ [1, 10], for capacities c = 1 and c = 3,
// against the dashed reference ln(1/(1−λ))/c + log₂ log₂ n + c.
//
// Expected shape (paper): waiting time grows like ln(1/(1−λ))/c (linear
// in i with slope ln(2)/c); c = 3 beats c = 1 for large λ.
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_fig5_wait_vs_lambda",
                       "Figure 5 (right): waiting time vs injection rate");
  bench::add_standard_flags(parser);
  parser.add_flag("imax", "largest i in lambda = 1 - 2^-i", "10");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto i_max = static_cast<std::uint32_t>(parser.get_uint("imax"));

  const std::vector<std::uint32_t> capacities = {1, 3};

  io::Table table({"i", "lambda", "c", "wait_avg", "wait_max", "reference",
                   "max_below_ref"});
  table.set_title(
      "Figure 5 (right): waiting time vs lambda = 1 - 2^-i");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t c : capacities) {
    for (std::uint32_t i = 1; i <= i_max; ++i) {
      const double lambda = sim::lambda_one_minus_2pow(i);
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);
      const double reference =
          analysis::fig5_reference(options.n, lambda, c);
      const auto wait_max = static_cast<double>(result.wait_max);
      table.add_row({io::Table::format_number(i),
                     io::Table::format_number(lambda),
                     io::Table::format_number(c),
                     io::Table::format_number(result.wait_mean),
                     io::Table::format_number(wait_max),
                     io::Table::format_number(reference),
                     wait_max <= reference ? "yes" : "NO"});
      csv_rows.push_back({static_cast<double>(i), lambda,
                          static_cast<double>(c), result.wait_mean, wait_max,
                          result.wait_p99_upper, reference});
    }
  }

  bench::emit(table, options, "fig5_wait_vs_lambda",
              {"i", "lambda", "c", "wait_avg", "wait_max", "wait_p99_upper",
               "reference"},
              csv_rows);
  return 0;
}
