// E15 — robustness under bin failures: the paper assumes reliable bins;
// this bench injects per-round, per-bin service failures (probability φ)
// and measures how pool size and waiting time degrade.
//
// Expected shape: stable as long as λ < 1 − φ (the effective service
// rate), with pool and waits growing like the reliable system at
// effective rate λ/(1 − φ); past the boundary the pool diverges —
// reported here as the measured pool growth slope.
#include <vector>

#include "bench_common.hpp"
#include "core/capped.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_failures",
                       "CAPPED under per-bin service failure probability");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::uint32_t c = 2;
  const std::uint64_t lambda_n =
      static_cast<std::uint64_t>(options.n) * 3 / 4;  // λ = 3/4
  const std::vector<double> failure_probs = {0.0, 0.05, 0.1, 0.2,
                                             0.24, 0.3};
  const std::vector<core::FailureMode> modes = {
      core::FailureMode::kSkipService, core::FailureMode::kCrashRequeue};

  io::Table table({"phi", "mode", "stable?", "pool/n", "wait_avg",
                   "wait_max", "pool_slope/round"});
  table.set_title("Failure injection, lambda = 3/4, c = 2 "
                  "(skip-service boundary at phi = 1/4)");
  std::vector<std::vector<double>> csv_rows;

  for (const auto mode : modes)
  for (const double phi : failure_probs) {
    auto cell = bench::make_cell(options, c, lambda_n);
    core::CappedConfig config = cell.to_capped();
    config.failure_probability = phi;
    config.failure_mode = mode;
    std::fprintf(stderr, "[cell] %s phi=%.2f mode=%s ...\n",
                 cell.label().c_str(), phi,
                 std::string(core::to_string(mode)).c_str());
    core::Capped process(config, core::Engine(options.seed));
    sim::RunSpec spec = sim::RunSpec::from_config(cell);
    const auto result = sim::run_experiment(process, spec);

    // Measure the residual pool drift over a second window: a stable
    // system has slope ≈ 0; past the boundary it grows ≈ (λ−(1−φ))·n.
    const std::uint64_t pool_start = process.pool_size();
    const std::uint64_t drift_rounds = 500;
    for (std::uint64_t t = 0; t < drift_rounds; ++t) (void)process.step();
    const double slope =
        (static_cast<double>(process.pool_size()) -
         static_cast<double>(pool_start)) /
        static_cast<double>(drift_rounds);
    const bool stable = slope < 0.01 * static_cast<double>(options.n);

    table.add_row({io::Table::format_number(phi),
                   std::string(core::to_string(mode)),
                   stable ? "yes" : "NO",
                   io::Table::format_number(result.normalized_pool.mean()),
                   io::Table::format_number(result.wait_mean),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max)),
                   io::Table::format_number(slope)});
    csv_rows.push_back({phi, static_cast<double>(mode), stable ? 1.0 : 0.0,
                        result.normalized_pool.mean(), result.wait_mean,
                        static_cast<double>(result.wait_max), slope});
  }

  bench::emit(table, options, "failures",
              {"phi", "mode", "stable", "pool_over_n", "wait_avg",
               "wait_max", "pool_slope_per_round"},
              csv_rows);
  return 0;
}
