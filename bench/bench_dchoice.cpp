// E14 — buffers vs choices: the paper's introduction positions finite
// buffers as the parallel-setting substitute for the power of two
// choices. This bench composes the two (CAPPED-GREEDY(c, d, λ)) and
// measures what d = 2 still adds once buffers exist.
//
// Expected shape: at c = 1, d = 2 helps noticeably (it is the classic
// two-choice effect on the pool); at the sweet-spot c the marginal gain
// of the second choice shrinks — buffers already deliver most of the
// benefit at half the random bits (the paper's Section I-B point).
#include <vector>

#include "bench_common.hpp"
#include "core/capped_greedy.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_dchoice",
                       "CAPPED-GREEDY(c, d): buffers composed with choices");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::uint32_t i = 6;  // λ = 1 − 2^−6
  const std::vector<std::uint32_t> capacities = {1, 2, 3};
  const std::vector<std::uint32_t> choices = {1, 2};

  io::Table table({"c", "d", "pool/n", "wait_avg", "wait_max",
                   "rng_draws/ball"});
  table.set_title("Buffers x choices, lambda = 1-2^-6");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t c : capacities) {
    for (const std::uint32_t d : choices) {
      const auto cell =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      core::CappedGreedyConfig config;
      config.n = options.n;
      config.capacity = c;
      config.d = d;
      config.lambda_n = cell.lambda_n;
      std::fprintf(stderr, "[cell] %s d=%u ...\n", cell.label().c_str(), d);
      core::CappedGreedy process(config, core::Engine(options.seed));
      const auto result =
          sim::run_experiment(process, sim::RunSpec::from_config(cell));

      table.add_row({io::Table::format_number(c),
                     io::Table::format_number(d),
                     io::Table::format_number(result.normalized_pool.mean()),
                     io::Table::format_number(result.wait_mean),
                     io::Table::format_number(
                         static_cast<double>(result.wait_max)),
                     io::Table::format_number(d)});
      csv_rows.push_back({static_cast<double>(c), static_cast<double>(d),
                          result.normalized_pool.mean(), result.wait_mean,
                          static_cast<double>(result.wait_max)});
    }
  }

  bench::emit(table, options, "dchoice",
              {"c", "d", "pool_over_n", "wait_avg", "wait_max"}, csv_rows);
  return 0;
}
