// Shared plumbing of the experiment benches: standard CLI flags (--n,
// --rounds, --seed, --csv-dir, ...), cell execution with the principled
// burn-in, and combined table + CSV reporting. Every bench prints the
// paper's series as an aligned table and mirrors it to CSV.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"

namespace iba::bench {

/// The knobs every experiment bench exposes.
struct BenchOptions {
  std::uint32_t n = 1u << 13;
  std::uint64_t rounds = 1000;
  std::uint64_t seed = 2021;  // ICDCS 2021
  std::uint64_t burn_in_override = 0;  ///< 0 = suggested_burn_in(λ)
  std::string csv_dir = ".";
  bool write_csv = true;
  std::string telemetry_out;  ///< empty = no metrics snapshot
};

/// Declares the standard flags on `parser`.
inline void add_standard_flags(io::ArgParser& parser) {
  parser.add_flag("n", "number of bins (paper: 32768)", "8192");
  parser.add_flag("rounds", "measured rounds per cell (paper: 1000)", "1000");
  parser.add_flag("seed", "master seed", "2021");
  parser.add_flag("burnin", "burn-in rounds (0 = auto 5/(1-lambda)+2000)",
                  "0");
  parser.add_flag("csv-dir", "directory for CSV output (created if missing)",
                  "results");
  parser.add_flag("csv", "write CSV files", "true");
  parser.add_flag("telemetry-out",
                  "write a metrics snapshot covering every cell to this path "
                  "(.prom = Prometheus text, .jsonl = JSON lines)",
                  "");
}

/// Reads the standard flags back.
inline BenchOptions read_standard_flags(const io::ArgParser& parser) {
  BenchOptions options;
  options.n = static_cast<std::uint32_t>(parser.get_uint("n"));
  options.rounds = parser.get_uint("rounds");
  options.seed = parser.get_uint("seed");
  options.burn_in_override = parser.get_uint("burnin");
  options.csv_dir = parser.get("csv-dir");
  options.write_csv = parser.get_bool("csv");
  options.telemetry_out = parser.get("telemetry-out");
  return options;
}

/// The bench-wide metrics registry: every run_cell records into it, and
/// --telemetry-out snapshots it next to the CSVs.
inline telemetry::Registry& bench_registry() {
  static telemetry::Registry registry;
  return registry;
}

/// Builds the SimConfig for one cell under `options`.
inline sim::SimConfig make_cell(const BenchOptions& options,
                                std::uint32_t capacity,
                                std::uint64_t lambda_n) {
  sim::SimConfig config;
  config.n = options.n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  config.measure_rounds = options.rounds;
  config.auto_burn_in = false;  // benches use the principled fixed burn-in
  config.burn_in = options.burn_in_override != 0
                       ? options.burn_in_override
                       : sim::suggested_burn_in(config.lambda());
  config.seed = options.seed;
  return config;
}

/// Runs one CAPPED cell, recording it into bench_registry(), and logs
/// progress to stderr.
inline sim::RunResult run_cell(const sim::SimConfig& config) {
  std::fprintf(stderr, "[cell] %s burn_in=%llu rounds=%llu ...\n",
               config.label().c_str(),
               static_cast<unsigned long long>(config.burn_in),
               static_cast<unsigned long long>(config.measure_rounds));
  sim::RunTelemetry telemetry;
  telemetry.registry = &bench_registry();
  return sim::run_capped(config, sim::RunSpec::from_config(config),
                         telemetry);
}

/// Writes the bench-wide registry to options.telemetry_out (no-op when
/// the flag was not given). Cumulative: covers every cell run so far.
inline void write_telemetry(const BenchOptions& options) {
  if (options.telemetry_out.empty()) return;
  if (telemetry::write_snapshot_file(bench_registry(),
                                     options.telemetry_out)) {
    std::fprintf(stderr, "[telemetry] wrote %s\n",
                 options.telemetry_out.c_str());
  } else {
    std::fprintf(stderr, "[telemetry] FAILED to write %s\n",
                 options.telemetry_out.c_str());
  }
}

/// Writes `table` to stdout, its numeric mirror to csv_dir/name.csv, and
/// the telemetry snapshot when requested.
inline void emit(const io::Table& table, const BenchOptions& options,
                 const std::string& name,
                 const std::vector<std::string>& columns,
                 const std::vector<std::vector<double>>& rows) {
  table.print();
  std::printf("\n");
  write_telemetry(options);
  if (!options.write_csv) return;
  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  const std::string path = options.csv_dir + "/" + name + ".csv";
  io::CsvWriter csv(path);
  csv.header(columns);
  for (const auto& row : rows) csv.row(row);
  std::fprintf(stderr, "[csv] wrote %s (%zu rows)\n", path.c_str(),
               rows.size());
}

}  // namespace iba::bench
