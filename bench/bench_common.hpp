// Shared plumbing of the experiment benches: standard CLI flags (--n,
// --rounds, --seed, --csv-dir, ...), cell execution with the principled
// burn-in, and combined table + CSV reporting. Every bench prints the
// paper's series as an aligned table and mirrors it to CSV. Progress and
// warnings go through the structured logger (telemetry/log.hpp), so
// IBA_LOG_LEVEL / IBA_LOG_FORMAT shape bench output like any other tool.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "io/cli.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "sim/config.hpp"
#include "sim/runner.hpp"
#include "telemetry/ball_trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/registry.hpp"

namespace iba::bench {

/// The knobs every experiment bench exposes.
struct BenchOptions {
  std::uint32_t n = 1u << 13;
  std::uint64_t rounds = 1000;
  std::uint64_t seed = 2021;  // ICDCS 2021
  std::uint64_t burn_in_override = 0;  ///< 0 = suggested_burn_in(λ)
  std::string csv_dir = ".";
  bool write_csv = true;
  std::string telemetry_out;  ///< empty = no metrics snapshot
  std::string trace_spans;    ///< empty = no span file
  double trace_sample = 0.0;  ///< 0 = ball tracing off
  bool force = false;         ///< overwrite existing output files
  core::RoundKernel kernel = core::RoundKernel::kBinMajor;
  std::uint32_t shards = 1;   ///< bin ranges run in parallel per round
};

/// Declares the standard flags on `parser`.
inline void add_standard_flags(io::ArgParser& parser) {
  parser.add_flag("n", "number of bins (paper: 32768)", "8192");
  parser.add_flag("rounds", "measured rounds per cell (paper: 1000)", "1000");
  parser.add_flag("seed", "master seed", "2021");
  parser.add_flag("burnin", "burn-in rounds (0 = auto 5/(1-lambda)+2000)",
                  "0");
  parser.add_flag("csv-dir", "directory for CSV output (created if missing)",
                  "results");
  parser.add_flag("csv", "write CSV files", "true");
  parser.add_flag("telemetry-out",
                  "write a metrics snapshot covering every cell to this path "
                  "(.prom = Prometheus text, .jsonl = JSON lines)",
                  "");
  parser.add_flag("trace-spans",
                  "append sampled ball spans (JSON lines) to this file; "
                  "requires --trace-sample > 0",
                  "");
  parser.add_flag("trace-sample",
                  "fraction of balls to trace through their lifecycle "
                  "(deterministic in the seed; 0 = off)",
                  "0");
  parser.add_flag("force", "overwrite existing output files", "false");
  parser.add_flag("kernel",
                  "round hot-path kernel: bin-major or scalar "
                  "(identical results, different speed)",
                  "bin-major");
  parser.add_flag("shards",
                  "bin ranges run in parallel per round (bin-major only; "
                  "results are invariant in this)",
                  "1");
}

/// Per-process span-tracing sink shared by every run_cell of a bench.
namespace detail {
struct TraceSink {
  std::string path;
  double sample = 0.0;
  std::ofstream out;
  std::uint64_t written = 0;
};
inline TraceSink& trace_sink() {
  static TraceSink sink;
  return sink;
}
}  // namespace detail

/// Refuses to clobber `path` unless --force was given. Thin forward to
/// the shared io::guard_overwrite (one-line diagnostic, exit 2), kept
/// under the bench namespace so existing bench call sites read the same.
inline void guard_overwrite(const std::string& path, bool force,
                            std::string_view flag) {
  io::guard_overwrite(path, force, std::string(flag));
}

/// Reads the standard flags back (and arms the span sink).
inline BenchOptions read_standard_flags(const io::ArgParser& parser) {
  BenchOptions options;
  try {
    options.n =
        static_cast<std::uint32_t>(parser.get_uint_range("n", 1, 1u << 28));
    options.rounds = parser.get_uint_range("rounds", 1, UINT64_MAX);
    options.seed = parser.get_uint("seed");
    options.burn_in_override = parser.get_uint("burnin");
    options.csv_dir = parser.get("csv-dir");
    options.write_csv = parser.get_bool("csv");
    options.telemetry_out = parser.get("telemetry-out");
    options.trace_spans = parser.get("trace-spans");
    options.trace_sample = parser.get_double_range("trace-sample", 0.0, 1.0);
    options.force = parser.get_bool("force");
    const std::string kernel_name = parser.get("kernel");
    if (!core::kernel_from_string(kernel_name, options.kernel)) {
      throw io::UsageError("--kernel expects bin-major or scalar, got '" +
                           kernel_name + "'");
    }
    options.shards =
        static_cast<std::uint32_t>(parser.get_uint_range("shards", 1, options.n));
  } catch (const io::UsageError& e) {
    io::fail_usage(e.what());
  }

  guard_overwrite(options.telemetry_out, options.force, "--telemetry-out");
  guard_overwrite(options.trace_spans, options.force, "--trace-spans");
  auto& sink = detail::trace_sink();
  sink.path = options.trace_spans;
  sink.sample = options.trace_sample;
  return options;
}

/// The bench-wide metrics registry: every run_cell records into it, and
/// --telemetry-out snapshots it next to the CSVs.
inline telemetry::Registry& bench_registry() {
  static telemetry::Registry registry;
  return registry;
}

/// Builds the SimConfig for one cell under `options`.
inline sim::SimConfig make_cell(const BenchOptions& options,
                                std::uint32_t capacity,
                                std::uint64_t lambda_n) {
  sim::SimConfig config;
  config.n = options.n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  config.measure_rounds = options.rounds;
  config.auto_burn_in = false;  // benches use the principled fixed burn-in
  config.burn_in = options.burn_in_override != 0
                       ? options.burn_in_override
                       : sim::suggested_burn_in(config.lambda());
  config.seed = options.seed;
  config.kernel = options.kernel;
  config.shards = options.shards;
  return config;
}

/// Runs one CAPPED cell, recording it into bench_registry() and — when
/// --trace-sample is set — tracing sampled balls, appending their spans
/// to the --trace-spans file.
inline sim::RunResult run_cell(const sim::SimConfig& config) {
  telemetry::log_info("cell_start", {{"cell", config.label()},
                                     {"burn_in", config.burn_in},
                                     {"rounds", config.measure_rounds}});
  sim::RunTelemetry telemetry;
  telemetry.registry = &bench_registry();

  auto& sink = detail::trace_sink();
  std::optional<telemetry::BallTracer> tracer;
  if (sink.sample > 0.0) {
    telemetry::BallTraceConfig trace_config;
    trace_config.seed = config.seed;
    trace_config.sample_rate = sink.sample;
    trace_config.completed_capacity = 1u << 16;
    tracer.emplace(trace_config);
    telemetry.ball_trace = &*tracer;
  }

  const sim::RunResult result = sim::run_capped(
      config, sim::RunSpec::from_config(config), telemetry);

  if (tracer.has_value() && !sink.path.empty()) {
    if (!sink.out.is_open()) {
      sink.out.open(sink.path, std::ios::trunc);
    }
    for (const telemetry::BallSpan& span : tracer->completed()) {
      telemetry::write_span_json(span, sink.out);
      ++sink.written;
    }
    sink.out.flush();
    telemetry::log_info("spans_written",
                        {{"cell", config.label()},
                         {"spans", tracer->completed().size()},
                         {"dropped", tracer->dropped()},
                         {"path", sink.path}});
  }
  return result;
}

/// Writes the bench-wide registry to options.telemetry_out (no-op when
/// the flag was not given). Cumulative: covers every cell run so far.
inline void write_telemetry(const BenchOptions& options) {
  if (options.telemetry_out.empty()) return;
  if (telemetry::write_snapshot_file(bench_registry(),
                                     options.telemetry_out)) {
    telemetry::log_info("telemetry_written",
                        {{"path", options.telemetry_out}});
  } else {
    telemetry::log_error("telemetry_write_failed",
                         {{"path", options.telemetry_out}});
  }
}

/// Writes `table` to stdout, its numeric mirror to csv_dir/name.csv, and
/// the telemetry snapshot when requested.
inline void emit(const io::Table& table, const BenchOptions& options,
                 const std::string& name,
                 const std::vector<std::string>& columns,
                 const std::vector<std::vector<double>>& rows) {
  table.print();
  std::printf("\n");
  write_telemetry(options);
  if (!options.write_csv) return;
  std::error_code ec;
  std::filesystem::create_directories(options.csv_dir, ec);
  const std::string path = options.csv_dir + "/" + name + ".csv";
  io::CsvWriter csv(path);
  csv.header(columns);
  for (const auto& row : rows) csv.row(row);
  telemetry::log_info("csv_written",
                      {{"path", path}, {"rows", rows.size()}});
}

}  // namespace iba::bench
