// E2 — Figure 4 (right): normalized pool size as a function of the
// injection rate λ = 1 − 2^(−i), i ∈ [1, 10], for capacities c = 1 and
// c = 3, against the dashed reference (1/c)·ln(1/(1−λ)) + 1.
//
// Expected shape (paper): the pool grows like ln(1/(1−λ))/c — linear in
// i with slope ln(2)/c — and stays below the reference curve.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "io/plot.hpp"
#include "stats/linear_fit.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser(
      "bench_fig4_pool_vs_lambda",
      "Figure 4 (right): normalized pool size vs injection rate");
  bench::add_standard_flags(parser);
  parser.add_flag("imax", "largest i in lambda = 1 - 2^-i", "10");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto i_max = static_cast<std::uint32_t>(parser.get_uint("imax"));

  const std::vector<std::uint32_t> capacities = {1, 3};

  io::Table table(
      {"i", "lambda", "c", "pool/n", "reference", "below_ref"});
  table.set_title(
      "Figure 4 (right): normalized pool size vs lambda = 1 - 2^-i");
  std::vector<std::vector<double>> csv_rows;

  io::AsciiPlot plot(56, 14);
  plot.set_title("Figure 4 (right): pool/n vs i  (lambda = 1 - 2^-i)");
  plot.set_x_label("i");

  for (const std::uint32_t c : capacities) {
    std::vector<double> plot_is, plot_pools;
    for (std::uint32_t i = 1; i <= i_max; ++i) {
      const double lambda = sim::lambda_one_minus_2pow(i);
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);
      const double measured = result.normalized_pool.mean();
      const double reference = analysis::fig4_reference(lambda, c);
      table.add_row({io::Table::format_number(i),
                     io::Table::format_number(lambda),
                     io::Table::format_number(c),
                     io::Table::format_number(measured),
                     io::Table::format_number(reference),
                     measured <= reference ? "yes" : "NO"});
      csv_rows.push_back({static_cast<double>(i), lambda,
                          static_cast<double>(c), measured,
                          result.normalized_pool.sem(), reference});
      plot_is.push_back(i);
      plot_pools.push_back(measured);
    }
    plot.add_series("c=" + std::to_string(c), plot_is, plot_pools);

    // The paper's law pool/n ≈ ln(1/(1−λ))/c + const is linear in i with
    // slope ln(2)/c; fit the large-i tail and report the match.
    std::vector<double> tail_is(plot_is.end() - 5, plot_is.end());
    std::vector<double> tail_pools(plot_pools.end() - 5, plot_pools.end());
    const auto fit = stats::fit_line(tail_is, tail_pools);
    std::printf("slope check c=%u: measured %.4f vs predicted ln(2)/c = "
                "%.4f (R^2 = %.4f)\n",
                c, fit.slope, std::log(2.0) / c, fit.r_squared);
  }
  std::printf("\n");
  plot.print();
  std::printf("\n");

  bench::emit(table, options, "fig4_pool_vs_lambda",
              {"i", "lambda", "c", "pool_over_n", "sem", "reference"},
              csv_rows);
  return 0;
}
