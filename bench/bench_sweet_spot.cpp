// E5 — the sweet spot: sweep c over a wide range at several injection
// rates, locate the empirical argmin of the average and maximum waiting
// time, and compare against the theory prediction c* = Θ(√ln(1/(1−λ))).
//
// Expected shape (paper): minima around c = 2 and c = 3 for the λ values
// of Section V; the optimal c grows slowly (square-root) with
// ln(1/(1−λ)).
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_sweet_spot",
                       "locate the optimal capacity c per injection rate");
  bench::add_standard_flags(parser);
  parser.add_flag("cmax", "largest capacity to sweep", "10");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto c_max = static_cast<std::uint32_t>(parser.get_uint("cmax"));

  const std::vector<std::uint32_t> lambda_exponents = {4, 7, 10};

  io::Table table({"lambda", "best_c_avg", "best_c_max", "sqrt_log_pred",
                   "wait_at_best", "wait_at_c1"});
  table.set_title("Sweet spot: optimal capacity per injection rate");
  std::vector<std::vector<double>> csv_rows;

  io::Table detail({"lambda", "c", "wait_avg", "wait_max"});
  detail.set_title("Sweet spot: full sweep detail");
  std::vector<std::vector<double>> detail_rows;

  for (const std::uint32_t i : lambda_exponents) {
    if ((static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) {
      std::fprintf(stderr, "[skip] lambda=1-2^-%u needs 2^%u | n\n", i, i);
      continue;
    }
    const double lambda = sim::lambda_one_minus_2pow(i);
    double best_avg = 0, best_avg_wait = 0, wait_at_c1 = 0;
    double best_max = 0, best_max_wait = 0;
    for (std::uint32_t c = 1; c <= c_max; ++c) {
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);
      const auto wait_max = static_cast<double>(result.wait_max);
      if (c == 1) wait_at_c1 = result.wait_mean;
      if (c == 1 || result.wait_mean < best_avg_wait) {
        best_avg_wait = result.wait_mean;
        best_avg = c;
      }
      if (c == 1 || wait_max < best_max_wait) {
        best_max_wait = wait_max;
        best_max = c;
      }
      detail.add_row({io::Table::format_number(lambda),
                      io::Table::format_number(c),
                      io::Table::format_number(result.wait_mean),
                      io::Table::format_number(wait_max)});
      detail_rows.push_back(
          {lambda, static_cast<double>(c), result.wait_mean, wait_max});
    }
    const double predicted = analysis::sweet_spot_prediction(lambda);
    table.add_row({io::Table::format_number(lambda),
                   io::Table::format_number(best_avg),
                   io::Table::format_number(best_max),
                   io::Table::format_number(predicted),
                   io::Table::format_number(best_avg_wait),
                   io::Table::format_number(wait_at_c1)});
    csv_rows.push_back(
        {lambda, best_avg, best_max, predicted, best_avg_wait, wait_at_c1});
  }

  detail.print();
  std::printf("\n");
  bench::emit(table, options, "sweet_spot",
              {"lambda", "best_c_avg", "best_c_max", "sqrt_log_prediction",
               "wait_at_best", "wait_at_c1"},
              csv_rows);
  if (options.write_csv) {
    io::CsvWriter csv(options.csv_dir + "/sweet_spot_detail.csv");
    csv.header({"lambda", "c", "wait_avg", "wait_max"});
    for (const auto& row : detail_rows) csv.row(row);
  }
  return 0;
}
