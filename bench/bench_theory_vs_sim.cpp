// E7 — theory vs simulation: Section V's first goal is "to gauge how
// much we lose by explicitly not optimizing constants in the analysis".
// This bench measures pool size and waiting time across a (λ, c) grid
// and reports the slack factor of the Theorem 1/2 bounds.
//
// Expected shape (paper): the bounds hold with room to spare — the paper
// calls the factor-4 pool bound "rather pessimistic"; slack factors of
// roughly 3–20 are the expected outcome, never below 1.
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_theory_vs_sim",
                       "slack of the Theorem 1/2 bounds vs measurement");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  const std::vector<std::uint32_t> lambda_exponents = {1, 2, 6, 10};
  const std::vector<std::uint32_t> capacities = {1, 2, 3, 4};

  io::Table table({"lambda", "c", "pool_max", "pool_bound", "pool_slack",
                   "wait_max", "wait_bound", "wait_slack", "holds"});
  table.set_title("Theorem 1/2 bounds vs measured maxima");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t i : lambda_exponents) {
    if ((static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) {
      std::fprintf(stderr, "[skip] lambda=1-2^-%u needs 2^%u | n\n", i, i);
      continue;
    }
    const double lambda = sim::lambda_one_minus_2pow(i);
    for (const std::uint32_t c : capacities) {
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);

      // Theorem 1 for c = 1 (sharper constants), Theorem 2 otherwise.
      const double pool_bound =
          c == 1 ? analysis::pool_bound_thm1(options.n, lambda)
                 : analysis::pool_bound_thm2(options.n, lambda, c);
      const double wait_bound =
          c == 1 ? analysis::wait_bound_thm1(options.n, lambda)
                 : analysis::wait_bound_thm2(options.n, lambda, c);

      const double pool_max = result.pool.max();
      const auto wait_max = static_cast<double>(result.wait_max);
      const double pool_slack = pool_max > 0 ? pool_bound / pool_max : 0.0;
      const double wait_slack = wait_max > 0 ? wait_bound / wait_max : 0.0;
      const bool holds = pool_max < pool_bound && wait_max < wait_bound;

      table.add_row({io::Table::format_number(lambda),
                     io::Table::format_number(c),
                     io::Table::format_number(pool_max),
                     io::Table::format_number(pool_bound),
                     io::Table::format_number(pool_slack),
                     io::Table::format_number(wait_max),
                     io::Table::format_number(wait_bound),
                     io::Table::format_number(wait_slack),
                     holds ? "yes" : "NO"});
      csv_rows.push_back({lambda, static_cast<double>(c), pool_max,
                          pool_bound, pool_slack, wait_max, wait_bound,
                          wait_slack, holds ? 1.0 : 0.0});
    }
  }

  bench::emit(table, options, "theory_vs_sim",
              {"lambda", "c", "pool_max", "pool_bound", "pool_slack",
               "wait_max", "wait_bound", "wait_slack", "holds"},
              csv_rows);
  return 0;
}
