// bench_dist — E28: distributed-engine overhead. Times the coordinator
// round loop against in-process workers over AF_UNIX socketpairs (the
// full wire protocol without process-spawn noise) and reports rounds/s
// and balls/s per worker count, next to the single-process Capped loop
// as the reference row. Verifies first that every variant's counters
// agree with the single-process run — the byte-identity contract in
// miniature — then times the steady state. Machine-readable results go
// to --json (default BENCH_dist.json), gated in CI by
// scripts/bench_trend.py against the committed baseline.
//
//   ./bench_dist                  # n = 2^16, workers 1/2/4
//   ./bench_dist --quick true     # CI smoke: n = 2^12
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/capped.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "net/socket.hpp"

namespace {

using namespace iba;

struct Measurement {
  std::string kernel;       ///< "single" or "dist"
  std::uint32_t shards = 1; ///< worker count (1 for the reference row)
  std::uint64_t rounds = 0;
  std::uint64_t balls = 0;  ///< thrown inside the timed window
  double seconds = 0.0;
  std::uint64_t pool_end = 0;       ///< trajectory fingerprint
  std::uint64_t generated_end = 0;  ///< trajectory fingerprint

  [[nodiscard]] double balls_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(balls) / seconds : 0.0;
  }
  [[nodiscard]] double rounds_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(rounds) / seconds : 0.0;
  }
};

core::CappedConfig make_config(std::uint32_t n, std::uint64_t lambda_n,
                               std::uint32_t capacity) {
  core::CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  return config;
}

Measurement time_single(const core::CappedConfig& config, std::uint64_t seed,
                        std::uint64_t burn_in, std::uint64_t rounds) {
  core::Capped process(config, core::Engine(seed));
  for (std::uint64_t r = 0; r < burn_in; ++r) (void)process.step();
  Measurement m;
  m.kernel = "single";
  m.shards = 1;
  m.rounds = rounds;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) m.balls += process.step().thrown;
  const auto stop = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.pool_end = process.pool_size();
  m.generated_end = process.generated_total();
  return m;
}

Measurement time_dist(const core::CappedConfig& config, std::uint64_t seed,
                      std::uint32_t workers, std::uint64_t burn_in,
                      std::uint64_t rounds) {
  std::vector<net::Socket> coordinator_side;
  std::vector<net::Socket> worker_side;
  for (std::uint32_t i = 0; i < workers; ++i) {
    auto [c, w] = net::socket_pair();
    coordinator_side.push_back(std::move(c));
    worker_side.push_back(std::move(w));
  }
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < workers; ++i) {
    threads.emplace_back([fd = worker_side[i].fd(), i] {
      try {
        dist::Worker(fd, i).run();
      } catch (...) {
      }
    });
  }
  std::vector<int> fds;
  for (const net::Socket& socket : coordinator_side) fds.push_back(socket.fd());

  Measurement m;
  m.kernel = "dist";
  m.shards = workers;
  m.rounds = rounds;
  {
    dist::Coordinator coordinator(config, core::Engine(seed), fds);
    for (std::uint64_t r = 0; r < burn_in; ++r) (void)coordinator.step();
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
      m.balls += coordinator.step().thrown;
    }
    const auto stop = std::chrono::steady_clock::now();
    m.seconds = std::chrono::duration<double>(stop - start).count();
    m.pool_end = coordinator.pool_size();
    m.generated_end = coordinator.generated_total();
    coordinator.shutdown();
  }
  for (net::Socket& socket : coordinator_side) socket.close();
  for (std::thread& thread : threads) thread.join();
  return m;
}

// Scheduling noise on small boxes dwarfs the effect under test; keep
// the best of `reps` full measurements (the repo's min-of-reps timing
// convention), after checking every rep walked the same trajectory.
template <typename TimeOnce>
Measurement min_of_reps(std::uint32_t reps, TimeOnce&& time_once) {
  Measurement best = time_once();
  for (std::uint32_t rep = 1; rep < reps; ++rep) {
    Measurement m = time_once();
    if (m.pool_end != best.pool_end ||
        m.generated_end != best.generated_end) {
      std::fprintf(stderr, "bench_dist: trajectory diverged across reps\n");
      std::exit(1);
    }
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser parser("bench_dist",
                       "distributed-engine round-loop throughput vs worker "
                       "count (BENCH_dist.json)");
  parser.add_flag("quick", "CI smoke size (n = 2^12)", "false");
  parser.add_flag("n", "bins (0 = size preset)", "0");
  parser.add_flag("lambda", "arrival rate per bin", "0.875");
  parser.add_flag("c", "bin capacity", "2");
  parser.add_flag("rounds", "timed rounds (0 = size preset)", "0");
  parser.add_flag("burn-in", "untimed warm-up rounds", "64");
  parser.add_flag("reps", "measurements per variant (min kept)", "3");
  parser.add_flag("workers", "comma-separated worker counts", "1,2,4");
  parser.add_flag("seed", "master engine seed", "2021");
  parser.add_flag("json", "output path for machine-readable results",
                  "BENCH_dist.json");
  parser.add_flag("json-rows", "rows to emit in the JSON: all | dist",
                  "all");
  if (!parser.parse_or_exit(argc, argv)) return 0;

  const bool quick = parser.get_bool("quick");
  const std::uint32_t n = parser.get_uint("n") > 0
                              ? static_cast<std::uint32_t>(parser.get_uint("n"))
                              : (quick ? 4096u : 65536u);
  const double lambda =
      parser.get_double_range("lambda", 0.0, 1.0, true, false);
  const std::uint32_t capacity =
      static_cast<std::uint32_t>(parser.get_uint_range("c", 1, 0xFFFF));
  const std::uint64_t rounds =
      parser.get_uint("rounds") > 0 ? parser.get_uint("rounds")
                                    : (quick ? 192u : 512u);
  const std::uint64_t burn_in = parser.get_uint("burn-in");
  const std::uint32_t reps =
      static_cast<std::uint32_t>(parser.get_uint_range("reps", 1, 100));
  const std::uint64_t seed = parser.get_uint("seed");
  // The committed CI baseline is generated with --json-rows dist: the
  // dist rows are syscall-bound and stable across hosts, while the
  // compute-bound single-process reference tracks CPU-frequency/steal
  // noise the dist rows do not share, so leave-one-out normalization
  // cannot cancel it. bench_trend gates only rows present in both
  // files, so the fresh side keeps the reference row as context.
  const std::string json_rows = parser.get("json-rows");
  if (json_rows != "all" && json_rows != "dist") {
    io::fail_usage("bench_dist: --json-rows must be 'all' or 'dist'");
  }
  const std::uint64_t lambda_n =
      static_cast<std::uint64_t>(lambda * static_cast<double>(n));

  std::vector<std::uint32_t> worker_counts;
  {
    const std::string list = parser.get("workers");
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string item =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      worker_counts.push_back(
          static_cast<std::uint32_t>(std::stoul(item)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const core::CappedConfig config = make_config(n, lambda_n, capacity);

  std::vector<Measurement> results;
  results.push_back(min_of_reps(
      reps, [&] { return time_single(config, seed, burn_in, rounds); }));
  for (const std::uint32_t workers : worker_counts) {
    results.push_back(min_of_reps(reps, [&] {
      return time_dist(config, seed, workers, burn_in, rounds);
    }));
  }

  // The determinism cross-check: every variant must have walked the
  // exact same trajectory (same generated count and end-of-run pool).
  bool determinism_ok = true;
  for (const Measurement& m : results) {
    determinism_ok &= m.pool_end == results.front().pool_end &&
                      m.generated_end == results.front().generated_end;
  }

  std::printf("dist throughput  n=%u c=%u lambda_n=%llu  %llu rounds%s\n", n,
              capacity, static_cast<unsigned long long>(lambda_n),
              static_cast<unsigned long long>(rounds),
              determinism_ok ? "" : "  TRAJECTORIES DIVERGED");
  for (const Measurement& m : results) {
    std::printf("  %-7s workers=%u  %9.3f s  %10.1f rounds/s  %12.0f balls/s\n",
                m.kernel.c_str(), m.shards, m.seconds, m.rounds_per_sec(),
                m.balls_per_sec());
  }

  const std::string json_path = parser.get("json");
  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_dist: cannot open %s\n", json_path.c_str());
    return 1;
  }
  io::JsonWriter json(out);
  json.begin_object();
  json.key("bench").value("dist");
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("capacity").value(static_cast<std::uint64_t>(capacity));
  json.key("lambda_n").value(lambda_n);
  json.key("burn_in").value(burn_in);
  json.key("rounds").value(rounds);
  json.key("seed").value(seed);
  json.key("quick").value(quick);
  json.key("determinism_ok").value(determinism_ok);
  json.key("results").begin_array();
  for (const Measurement& m : results) {
    if (json_rows == "dist" && m.kernel != "dist") continue;
    json.begin_object();
    json.key("kernel").value(m.kernel);
    json.key("shards").value(static_cast<std::uint64_t>(m.shards));
    json.key("rounds").value(m.rounds);
    json.key("balls").value(m.balls);
    json.key("seconds").value(m.seconds);
    json.key("balls_per_sec").value(m.balls_per_sec());
    json.key("rounds_per_sec").value(m.rounds_per_sec());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";

  return determinism_ok ? 0 : 1;
}
