// E9 — n-insensitivity: Section V states that "the actual number of n
// has negligible impact on the (normalized) simulation results", which
// justifies the paper presenting n = 2^15 only. This bench sweeps n over
// several octaves at fixed (λ, c) and reports the normalized pool and
// the waiting times.
//
// Expected shape (paper): pool/n and wait_avg flat in n; wait_max grows
// only with the log log n term.
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_n_sensitivity",
                       "normalized metrics across n at fixed lambda, c");
  bench::add_standard_flags(parser);
  parser.add_flag("i", "lambda = 1 - 2^-i", "6");
  parser.add_flag("c", "capacity", "2");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  auto options = bench::read_standard_flags(parser);
  const auto i = static_cast<std::uint32_t>(parser.get_uint("i"));
  const auto c = static_cast<std::uint32_t>(parser.get_uint("c"));
  const double lambda = sim::lambda_one_minus_2pow(i);

  const std::vector<std::uint32_t> sizes = {1u << 10, 1u << 11, 1u << 12,
                                            1u << 13, 1u << 14, 1u << 15};

  io::Table table({"n", "pool/n", "wait_avg", "wait_max",
                   "wait_max - loglog n"});
  table.set_title("n-insensitivity of normalized results");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t n : sizes) {
    options.n = n;
    const auto config =
        bench::make_cell(options, c, sim::lambda_n_for(n, i));
    const auto result = bench::run_cell(config);
    const double loglog = analysis::log_log_n(n);
    table.add_row({io::Table::format_number(n),
                   io::Table::format_number(result.normalized_pool.mean()),
                   io::Table::format_number(result.wait_mean),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max)),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max) - loglog)});
    csv_rows.push_back({static_cast<double>(n), lambda,
                        static_cast<double>(c),
                        result.normalized_pool.mean(), result.wait_mean,
                        static_cast<double>(result.wait_max), loglog});
  }

  bench::emit(table, options, "n_sensitivity",
              {"n", "lambda", "c", "pool_over_n", "wait_avg", "wait_max",
               "loglog_n"},
              csv_rows);
  return 0;
}
