// E6 — the Section I-B comparison: CAPPED(c, λ) against the batch
// GREEDY[1] and GREEDY[2] of [PODC'16] on one workload.
//
// Expected shape (paper): for constant λ, CAPPED's maximum waiting time
// is log log n + O(1) while GREEDY[1] pays Θ((1/(1−λ))·log(n/(1−λ))) and
// GREEDY[2] Θ(log(n/(1−λ))) — so CAPPED wins on max wait, increasingly
// clearly as λ grows, while all processes serve the same throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "core/greedy.hpp"

namespace {

struct Row {
  std::string process;
  double lambda;
  double wait_avg;
  double wait_max;
  double system_load_over_n;
};

Row run_greedy(const iba::bench::BenchOptions& options, std::uint32_t d,
               std::uint64_t lambda_n, std::uint64_t burn_in) {
  using namespace iba;
  core::BatchGreedyConfig config;
  config.n = options.n;
  config.d = d;
  config.lambda_n = lambda_n;
  core::BatchGreedy process(config, core::Engine(options.seed));
  sim::RunSpec spec;
  spec.burn_in = burn_in;
  spec.auto_burn_in = false;
  spec.measure_rounds = options.rounds;
  std::fprintf(stderr, "[cell] greedy[%u] lambda_n=%llu burn_in=%llu ...\n",
               d, static_cast<unsigned long long>(lambda_n),
               static_cast<unsigned long long>(burn_in));
  const auto result = sim::run_experiment(process, spec);
  return {"GREEDY[" + std::to_string(d) + "]", config.lambda(),
          result.wait_mean, static_cast<double>(result.wait_max),
          result.system_load.mean() / options.n};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_compare_greedy",
                       "CAPPED vs batch GREEDY[1]/GREEDY[2] of PODC'16");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);

  // λ = 3/4 (constant) and λ = 1 − 2^(−6) (high). GREEDY[1]'s queues
  // relax on the 1/(1−λ)² timescale, so burn-in uses that scale.
  const std::vector<std::uint32_t> lambda_exponents = {2, 6};

  io::Table table({"process", "lambda", "wait_avg", "wait_max",
                   "sys_load/n"});
  table.set_title("CAPPED vs GREEDY[d] (PODC'16 baselines)");
  std::vector<std::vector<double>> csv_rows;
  auto add = [&](const Row& row, double process_id) {
    table.add_row({row.process, io::Table::format_number(row.lambda),
                   io::Table::format_number(row.wait_avg),
                   io::Table::format_number(row.wait_max),
                   io::Table::format_number(row.system_load_over_n)});
    csv_rows.push_back({process_id, row.lambda, row.wait_avg, row.wait_max,
                        row.system_load_over_n});
  };

  for (const std::uint32_t i : lambda_exponents) {
    if ((static_cast<std::uint64_t>(options.n) % (1ull << i)) != 0) {
      std::fprintf(stderr, "[skip] lambda=1-2^-%u needs 2^%u | n\n", i, i);
      continue;
    }
    const std::uint64_t lambda_n = sim::lambda_n_for(options.n, i);
    const double lambda = sim::lambda_one_minus_2pow(i);
    const double slack = 1.0 - lambda;
    const auto greedy_burn = static_cast<std::uint64_t>(
        std::min(2000.0 + 5.0 / (slack * slack), 2e5));

    for (std::uint32_t c : {1u, 2u, 3u}) {
      auto config = bench::make_cell(options, c, lambda_n);
      const auto result = bench::run_cell(config);
      add({"CAPPED(c=" + std::to_string(c) + ")", lambda, result.wait_mean,
           static_cast<double>(result.wait_max),
           result.system_load.mean() / options.n},
          static_cast<double>(c));
    }
    add(run_greedy(options, 1, lambda_n, greedy_burn), 101);
    add(run_greedy(options, 2, lambda_n, greedy_burn), 102);

    std::printf("theory scales at lambda=%.6g: greedy1 ~ %.4g, "
                "greedy2 ~ %.4g, capped ~ loglog n = %.4g\n\n",
                lambda, analysis::greedy1_wait_scale(options.n, lambda),
                analysis::greedy2_wait_scale(options.n, lambda),
                analysis::log_log_n(options.n));
  }

  bench::emit(table, options, "compare_greedy",
              {"process_id", "lambda", "wait_avg", "wait_max",
               "sys_load_over_n"},
              csv_rows);
  return 0;
}
