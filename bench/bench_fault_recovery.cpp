// E23 — fault-recovery and robustness overhead (BENCH_fault.json).
//
// Two questions, one binary:
//  * What do the robustness features cost? The same trajectory is timed
//    bare, with the invariant auditor at cadence 1 and 64, and with
//    periodic checkpointing — the audited/checkpointed variants replay
//    the identical round sequence, so the delta is pure overhead. The
//    budget (docs/ROBUSTNESS.md) is <= 5% for the audit-64 and
//    checkpoint configurations.
//  * How fast does CAPPED recover from a mass crash? Half the bins
//    crash with state loss mid-run; the bench reports the number of
//    rounds until the pool re-enters its pre-crash band after repair.
//
//   ./bench_fault_recovery                 # full size: n = 2^15
//   ./bench_fault_recovery --quick true    # CI smoke: n = 2^12

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/capped.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_plan.hpp"
#include "fault/schedule.hpp"
#include "io/cli.hpp"
#include "io/json.hpp"
#include "sim/checkpoint.hpp"
#include "telemetry/log.hpp"

namespace {

using iba::core::Capped;
using iba::core::CappedConfig;
using iba::core::Engine;
using iba::fault::FaultPlan;
using iba::fault::InvariantAuditor;

struct OverheadRow {
  std::string variant;
  double seconds = 0.0;
  double overhead_pct = 0.0;  ///< vs the bare run
  std::uint64_t deep_audits = 0;
  std::uint64_t checkpoints = 0;
};

CappedConfig make_config(std::uint32_t n, std::uint32_t capacity,
                         std::uint64_t lambda_n) {
  CappedConfig config;
  config.n = n;
  config.capacity = capacity;
  config.lambda_n = lambda_n;
  return config;
}

/// Times `rounds` steady-state rounds with optional auditing and
/// checkpointing. All variants replay the identical trajectory.
OverheadRow time_variant(const CappedConfig& config, std::uint64_t seed,
                         std::uint64_t burn_in, std::uint64_t rounds,
                         std::uint64_t audit_cadence,
                         std::uint64_t checkpoint_every,
                         const std::string& checkpoint_path,
                         bool* audit_ok) {
  Capped process(config, Engine(seed));
  for (std::uint64_t r = 0; r < burn_in; ++r) (void)process.step();

  OverheadRow row;
  InvariantAuditor auditor(audit_cadence == 0 ? 1 : audit_cadence);
  std::uint64_t since_checkpoint = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const auto m = process.step();
    if (audit_cadence > 0) auditor.observe(process, m);
    if (checkpoint_every > 0 && ++since_checkpoint >= checkpoint_every) {
      since_checkpoint = 0;
      iba::sim::save_checkpoint(process.snapshot(), checkpoint_path);
      ++row.checkpoints;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  row.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  row.deep_audits = audit_cadence > 0 ? auditor.deep_audits() : 0;
  if (audit_cadence > 0 && !auditor.ok()) {
    *audit_ok = false;
    iba::telemetry::log_error(
        "bench_audit_violation",
        {{"variant", std::string_view("overhead")},
         {"violations", auditor.violation_count()}});
  }
  return row;
}

struct RecoveryResult {
  std::uint64_t crash_round = 0;
  std::uint64_t repair_round = 0;
  std::uint64_t recovered_round = 0;  ///< 0 = never within horizon
  std::uint64_t requeued = 0;         ///< balls dumped by the crash
  double pool_band = 0.0;             ///< pre-crash pool ceiling
  std::uint64_t pool_peak = 0;        ///< worst pool during the outage

  [[nodiscard]] std::int64_t recovery_rounds() const {
    return recovered_round == 0
               ? -1
               : static_cast<std::int64_t>(recovered_round - repair_round);
  }
};

/// Crashes half the bins (state loss) mid-run and measures how many
/// rounds after repair the pool needs to re-enter its pre-crash band
/// (10% above the largest pool seen in the observation window).
RecoveryResult measure_recovery(const CappedConfig& config,
                                std::uint64_t seed, std::uint64_t burn_in,
                                std::uint64_t down, std::uint64_t horizon,
                                bool* audit_ok) {
  RecoveryResult result;
  result.crash_round = burn_in + 100;
  result.repair_round = result.crash_round + down;

  const std::string schedule =
      "crash@" + std::to_string(result.crash_round) +
      ":bins=0-" + std::to_string(config.n / 2 - 1) +
      ",down=" + std::to_string(down);
  FaultPlan plan(iba::fault::parse_schedule(schedule), config.n,
                 config.capacity, seed + 1);
  Capped process(config, Engine(seed));
  process.set_fault_plan(&plan);
  InvariantAuditor auditor(/*cadence=*/16);

  std::uint64_t pre_crash_max = 0;
  for (std::uint64_t round = 1; round <= result.repair_round + horizon;
       ++round) {
    const auto m = process.step();
    auditor.observe(process, m);
    if (round > burn_in && round < result.crash_round) {
      pre_crash_max = std::max(pre_crash_max, m.pool_size);
    }
    if (round == result.crash_round) {
      result.requeued = m.requeued;
      result.pool_band =
          1.10 * static_cast<double>(std::max<std::uint64_t>(pre_crash_max, 1));
    }
    if (round >= result.crash_round) {
      result.pool_peak = std::max(result.pool_peak, m.pool_size);
    }
    if (round >= result.repair_round && result.recovered_round == 0 &&
        static_cast<double>(m.pool_size) <= result.pool_band) {
      result.recovered_round = round;
      break;
    }
  }
  if (!auditor.ok()) {
    *audit_ok = false;
    iba::telemetry::log_error(
        "bench_audit_violation",
        {{"variant", std::string_view("recovery")},
         {"violations", auditor.violation_count()}});
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  iba::io::ArgParser parser(
      "bench_fault_recovery",
      "audit/checkpoint overhead and mass-crash recovery (BENCH_fault.json)");
  parser.add_flag("n", "number of bins", "32768");
  parser.add_flag("lambda", "arrival rate per bin", "0.95");
  parser.add_flag("capacity", "bin buffer size c", "2");
  parser.add_flag("burnin", "untimed warm-up rounds", "500");
  parser.add_flag("rounds", "timed rounds per overhead variant", "1000");
  parser.add_flag("seed", "master seed", "2021");
  parser.add_flag("down", "mass-crash downtime, rounds", "50");
  parser.add_flag("checkpoint-every",
                  "checkpoint cadence of the checkpointed variant", "250");
  parser.add_flag("quick",
                  "CI smoke mode: n = 4096, 200 burn-in, 150 timed rounds",
                  "false");
  parser.add_flag("json", "output path for machine-readable results",
                  "BENCH_fault.json");
  if (!parser.parse_or_exit(argc, argv)) return 2;

  std::uint32_t n;
  double lambda;
  std::uint32_t capacity;
  std::uint64_t burn_in;
  std::uint64_t rounds;
  std::uint64_t seed;
  std::uint64_t down;
  std::uint64_t checkpoint_every;
  bool quick;
  std::string json_path;
  try {
    n = static_cast<std::uint32_t>(parser.get_uint_range("n", 2, 1u << 28));
    lambda = parser.get_double_range("lambda", 0.0, 1.0, true, true);
    capacity =
        static_cast<std::uint32_t>(parser.get_uint_range("capacity", 1, 65535));
    burn_in = parser.get_uint("burnin");
    rounds = parser.get_uint_range("rounds", 1, UINT64_MAX);
    seed = parser.get_uint("seed");
    down = parser.get_uint_range("down", 1, UINT64_MAX);
    checkpoint_every =
        parser.get_uint_range("checkpoint-every", 1, UINT64_MAX);
    quick = parser.get_bool("quick");
    json_path = parser.get("json");
  } catch (const iba::io::UsageError& e) {
    iba::io::fail_usage(e.what());
  }
  if (quick) {
    if (!parser.provided("n")) n = 1u << 12;
    if (!parser.provided("burnin")) burn_in = 200;
    if (!parser.provided("rounds")) rounds = 150;
  }
  const std::uint64_t lambda_n = static_cast<std::uint64_t>(
      std::llround(lambda * static_cast<double>(n)));
  const CappedConfig config = make_config(n, capacity, lambda_n);

  const std::string checkpoint_path =
      (std::filesystem::temp_directory_path() / "bench_fault_ckpt").string();
  bool audit_ok = true;

  // -- overhead ------------------------------------------------------
  struct Spec {
    const char* name;
    std::uint64_t audit;
    std::uint64_t checkpoint;
  } const specs[] = {
      {"bare", 0, 0},
      {"audit-1", 1, 0},
      {"audit-64", 64, 0},
      {"checkpoint", 0, checkpoint_every},
  };
  // fsync latency and scheduler jitter swing a single sample by tens of
  // percent; each variant replays the identical trajectory, so the
  // minimum over a few repetitions is the interference-free cost.
  const int reps = quick ? 1 : 3;
  std::vector<OverheadRow> overhead;
  for (const Spec& spec : specs) {
    OverheadRow row{};
    for (int rep = 0; rep < reps; ++rep) {
      OverheadRow sample = time_variant(config, seed, burn_in, rounds,
                                        spec.audit, spec.checkpoint,
                                        checkpoint_path, &audit_ok);
      if (rep == 0 || sample.seconds < row.seconds) row = sample;
    }
    row.variant = spec.name;
    overhead.push_back(row);
  }
  std::error_code ec;
  std::filesystem::remove(checkpoint_path, ec);
  const double bare = overhead.front().seconds;
  for (OverheadRow& row : overhead) {
    row.overhead_pct =
        bare > 0.0 ? (row.seconds / bare - 1.0) * 100.0 : 0.0;
  }

  // -- recovery ------------------------------------------------------
  const std::uint64_t horizon = 20000;
  const RecoveryResult recovery =
      measure_recovery(config, seed, burn_in, down, horizon, &audit_ok);

  std::printf("fault recovery  n=%u c=%u lambda_n=%llu  %llu timed rounds\n",
              n, capacity, static_cast<unsigned long long>(lambda_n),
              static_cast<unsigned long long>(rounds));
  for (const OverheadRow& row : overhead) {
    std::printf("  %-11s %9.3f s  %+6.2f%%  (deep audits %llu, checkpoints "
                "%llu)\n",
                row.variant.c_str(), row.seconds, row.overhead_pct,
                static_cast<unsigned long long>(row.deep_audits),
                static_cast<unsigned long long>(row.checkpoints));
  }
  std::printf(
      "  mass crash: %llu balls requeued at round %llu, repair at %llu, "
      "pool peak %llu, band %.0f, recovery %lld rounds\n",
      static_cast<unsigned long long>(recovery.requeued),
      static_cast<unsigned long long>(recovery.crash_round),
      static_cast<unsigned long long>(recovery.repair_round),
      static_cast<unsigned long long>(recovery.pool_peak),
      recovery.pool_band,
      static_cast<long long>(recovery.recovery_rounds()));

  // Budget check: audit-64 and checkpoint variants must stay <= 5%.
  // Quick/CI runs are far too short for per-checkpoint fixed costs to
  // amortize (and too noisy for any verdict), so the budget is only
  // evaluated at full size; quick runs report the raw measurements and
  // flag the verdict as not evaluated.
  const double budget_pct = 5.0;
  const bool budget_evaluated = !quick;
  bool within_budget = true;
  for (const OverheadRow& row : overhead) {
    if (budget_evaluated &&
        (row.variant == "audit-64" || row.variant == "checkpoint") &&
        row.overhead_pct > budget_pct) {
      within_budget = false;
      iba::telemetry::log_warn("overhead_budget_exceeded",
                               {{"variant", std::string_view(row.variant)},
                                {"overhead_pct", row.overhead_pct},
                                {"budget_pct", budget_pct}});
    }
  }

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    iba::telemetry::log_error("json_open_failed", {{"path", json_path}});
    return 1;
  }
  iba::io::JsonWriter json(out);
  json.begin_object();
  json.key("bench").value("fault_recovery");
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("capacity").value(static_cast<std::uint64_t>(capacity));
  json.key("lambda_n").value(lambda_n);
  json.key("burn_in").value(burn_in);
  json.key("rounds").value(rounds);
  json.key("seed").value(seed);
  json.key("quick").value(quick);
  json.key("audit_ok").value(audit_ok);
  json.key("overhead_budget_pct").value(budget_pct);
  json.key("budget_evaluated").value(budget_evaluated);
  json.key("within_budget").value(within_budget);
  json.key("overhead").begin_array();
  for (const OverheadRow& row : overhead) {
    json.begin_object();
    json.key("variant").value(row.variant);
    json.key("seconds").value(row.seconds);
    json.key("overhead_pct").value(row.overhead_pct);
    json.key("deep_audits").value(row.deep_audits);
    json.key("checkpoints").value(row.checkpoints);
    json.end_object();
  }
  json.end_array();
  json.key("recovery").begin_object();
  json.key("crash_round").value(recovery.crash_round);
  json.key("repair_round").value(recovery.repair_round);
  json.key("requeued").value(recovery.requeued);
  json.key("pool_band").value(recovery.pool_band);
  json.key("pool_peak").value(recovery.pool_peak);
  json.key("recovery_rounds")
      .value(static_cast<double>(recovery.recovery_rounds()));
  json.end_object();
  json.end_object();
  out << "\n";
  iba::telemetry::log_info("bench_json_written", {{"path", json_path}});
  return audit_ok ? 0 : 1;
}
