// E18 — waiting-time *distributions*: the figures report averages and
// maxima; this bench exports the full dyadic histogram of waiting times
// for CAPPED(c ∈ {1, 2, 3}), GREEDY[1] and GREEDY[2] on one workload,
// making the tail separation visible bucket by bucket.
//
// Expected shape: CAPPED's mass is confined to the first few dyadic
// buckets with a hard cutoff (log log n tail); GREEDY[1] spreads mass
// across buckets out to Θ(log n/(1−λ)); GREEDY[2] sits in between.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/capped.hpp"
#include "core/greedy.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace iba;

struct Row {
  std::string process;
  stats::Log2Histogram histogram;
};

template <typename Process>
stats::Log2Histogram measure(Process& process, std::uint64_t burn_in,
                             std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < burn_in; ++i) (void)process.step();
  process.reset_wait_stats();
  for (std::uint64_t i = 0; i < rounds; ++i) (void)process.step();
  return process.waits().histogram();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_wait_distribution",
                       "dyadic waiting-time histograms per process");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const std::uint64_t lambda_n =
      static_cast<std::uint64_t>(options.n) - (options.n >> 6);  // 1−2^−6
  const double lambda =
      static_cast<double>(lambda_n) / static_cast<double>(options.n);
  const std::uint64_t burn_in = sim::suggested_burn_in(lambda);
  // GREEDY[1]'s queues relax on the 1/(1−λ)² scale.
  const std::uint64_t greedy_burn = burn_in + 64ull * 64ull * 5ull;

  std::vector<Row> rows;
  for (const std::uint32_t c : {1u, 2u, 3u}) {
    core::CappedConfig config;
    config.n = options.n;
    config.capacity = c;
    config.lambda_n = lambda_n;
    std::fprintf(stderr, "[cell] capped c=%u ...\n", c);
    core::Capped process(config, core::Engine(options.seed));
    rows.push_back({"CAPPED(c=" + std::to_string(c) + ")",
                    measure(process, burn_in, options.rounds)});
  }
  for (const std::uint32_t d : {1u, 2u}) {
    core::BatchGreedyConfig config;
    config.n = options.n;
    config.d = d;
    config.lambda_n = lambda_n;
    std::fprintf(stderr, "[cell] greedy d=%u ...\n", d);
    core::BatchGreedy process(config, core::Engine(options.seed));
    rows.push_back({"GREEDY[" + std::to_string(d) + "]",
                    measure(process, greedy_burn, options.rounds)});
  }

  // Shared bucket range.
  std::size_t buckets = 0;
  for (const Row& row : rows) {
    buckets = std::max(buckets, row.histogram.bin_count());
  }

  std::vector<std::string> columns = {"wait bucket"};
  for (const Row& row : rows) columns.push_back(row.process);
  io::Table table(columns);
  table.set_title("Waiting-time distribution (fraction per dyadic bucket), "
                  "lambda = 1-2^-6");
  std::vector<std::vector<double>> csv_rows;

  for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
    std::vector<std::string> cells;
    const auto lo = stats::Log2Histogram::bin_lo(bucket);
    const auto hi = stats::Log2Histogram::bin_hi(bucket);
    cells.push_back(bucket == 0 ? std::string("0")
                                : std::to_string(lo) + ".." +
                                      std::to_string(hi - 1));
    std::vector<double> csv_row = {static_cast<double>(lo)};
    for (const Row& row : rows) {
      const double fraction =
          row.histogram.total() == 0
              ? 0.0
              : static_cast<double>(row.histogram.count(bucket)) /
                    static_cast<double>(row.histogram.total());
      cells.push_back(io::Table::format_number(fraction));
      csv_row.push_back(fraction);
    }
    table.add_row(std::move(cells));
    csv_rows.push_back(std::move(csv_row));
  }

  std::vector<std::string> csv_columns = {"bucket_lo"};
  for (const Row& row : rows) csv_columns.push_back(row.process);
  bench::emit(table, options, "wait_distribution", csv_columns, csv_rows);

  std::printf("p99 upper bounds: ");
  for (const Row& row : rows) {
    std::printf("%s=%llu  ", row.process.c_str(),
                static_cast<unsigned long long>(
                    row.histogram.quantile_upper_bound(0.99)));
  }
  std::printf("\n");
  return 0;
}
