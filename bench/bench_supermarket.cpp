// E19 — the supermarket model (Mitzenmacher, reference [16]): steady-
// state queue-tail fractions vs the classical fixed point
// λ^((d^k − 1)/(d − 1)), plus sojourn times — anchoring the continuous-
// time related-work substrate to its closed form.
//
// Expected shape: d = 1 tails are geometric (λ^k); d = 2 tails are
// doubly exponential — visibly collapsing after k = 2–3; sojourn times
// shrink by a large factor at high load.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/supermarket.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_supermarket",
                       "queue tails vs the two-choice fixed point");
  bench::add_standard_flags(parser);
  parser.add_flag("horizon", "measured time units after warm-up", "300");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const double horizon = parser.get_double("horizon");

  io::Table table({"lambda", "d", "k", "tail_measured", "tail_fixed_point",
                   "sojourn_mean"});
  table.set_title("Supermarket model: Pr[queue >= k] vs fixed point");
  std::vector<std::vector<double>> csv_rows;

  for (const double lambda : {0.7, 0.9, 0.98}) {
    for (const std::uint32_t d : {1u, 2u}) {
      core::SupermarketConfig config;
      config.n = options.n;
      config.d = d;
      config.lambda = lambda;
      std::fprintf(stderr, "[cell] supermarket lambda=%.2f d=%u ...\n",
                   lambda, d);
      core::Supermarket system(config, core::Engine(options.seed));
      // Warm-up scales with the M/M/1 relaxation time.
      system.advance(50.0 + 5.0 / ((1 - lambda) * (1 - lambda)));
      system.reset_sojourn_stats();

      std::vector<double> tails(6, 0.0);
      const int samples = 60;
      for (int s = 0; s < samples; ++s) {
        system.advance(horizon / samples);
        for (std::uint64_t k = 1; k <= 5; ++k) {
          tails[k] += system.tail_fraction(k);
        }
      }
      for (auto& t : tails) t /= samples;

      for (std::uint64_t k = 1; k <= 5; ++k) {
        const double fixed_point =
            core::Supermarket::fixed_point_tail(lambda, d, k);
        table.add_row({io::Table::format_number(lambda),
                       io::Table::format_number(d),
                       io::Table::format_number(static_cast<double>(k)),
                       io::Table::format_number(tails[k]),
                       io::Table::format_number(fixed_point),
                       k == 1 ? io::Table::format_number(
                                    system.sojourn().mean())
                              : ""});
        csv_rows.push_back({lambda, static_cast<double>(d),
                            static_cast<double>(k), tails[k], fixed_point,
                            system.sojourn().mean()});
      }
    }
  }

  bench::emit(table, options, "supermarket",
              {"lambda", "d", "k", "tail_measured", "tail_fixed_point",
               "sojourn_mean"},
              csv_rows);
  return 0;
}
