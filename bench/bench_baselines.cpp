// E10 — baseline zoo sanity: regenerates the classical scalings the
// paper's related-work section leans on, validating every substrate
// implementation against its published behaviour.
//
//  * THRESHOLD[1], m = n:      rounds ≈ ln ln n + O(1)     [Adler et al.]
//  * heavy THRESHOLD[m/n + 1]: O(log log (m/n) + log* n)   [Lenzen et al.]
//  * static one-choice, m = n: max ≈ ln n / ln ln n        [Raab–Steger]
//  * static GREEDY[d], m = n:  max ≈ ln ln n / ln d + O(1) [Azar et al.]
//  * repeated balls-into-bins: O(n) recovery to O(log n)   [Becchetti+]
//  * Adler d-copy FIFO:        O(1) expected wait          [Adler–B.–S.]
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/adler_fifo.hpp"
#include "core/becchetti.hpp"
#include "core/collision.hpp"
#include "core/reallocation.hpp"
#include "core/static_allocation.hpp"
#include "core/threshold.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_baselines",
                       "related-work scalings of every substrate process");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto seed = options.seed;

  // --- THRESHOLD[1] and static allocations across n -----------------------
  io::Table tstatic({"n", "thr1_rounds", "lnln_n", "one_choice_max",
                     "ln/lnln", "greedy2_max", "greedy3_max"});
  tstatic.set_title("Static protocols, m = n");
  std::vector<std::vector<double>> static_rows;
  for (std::uint32_t log_n = 10; log_n <= 16; ++log_n) {
    const std::uint32_t n = 1u << log_n;
    const double ln_n = std::log(static_cast<double>(n));
    const auto thr = core::run_threshold(n, n, 1, core::Engine(seed + log_n));
    const auto oc = core::one_choice(n, n, core::Engine(seed + 100 + log_n));
    const auto g2 = core::greedy_d(n, n, 2, core::Engine(seed + 200 + log_n));
    const auto g3 = core::greedy_d(n, n, 3, core::Engine(seed + 300 + log_n));
    tstatic.add_row(
        {io::Table::format_number(n),
         io::Table::format_number(static_cast<double>(thr.rounds)),
         io::Table::format_number(std::log(ln_n)),
         io::Table::format_number(static_cast<double>(oc.max_load)),
         io::Table::format_number(ln_n / std::log(ln_n)),
         io::Table::format_number(static_cast<double>(g2.max_load)),
         io::Table::format_number(static_cast<double>(g3.max_load))});
    static_rows.push_back({static_cast<double>(n),
                           static_cast<double>(thr.rounds), std::log(ln_n),
                           static_cast<double>(oc.max_load),
                           ln_n / std::log(ln_n),
                           static_cast<double>(g2.max_load),
                           static_cast<double>(g3.max_load)});
  }
  bench::emit(tstatic, options, "baselines_static",
              {"n", "threshold1_rounds", "lnln_n", "one_choice_max",
               "ln_over_lnln", "greedy2_max", "greedy3_max"},
              static_rows);

  // --- ALWAYS-GO-LEFT and the Stemann collision protocol ------------------
  io::Table tleft({"n", "greedy2_max", "left2_max", "collision_rounds",
                   "collision_max"});
  tleft.set_title("Asymmetric tie-breaking + collision protocol, m = n");
  std::vector<std::vector<double>> left_rows;
  for (std::uint32_t log_n = 12; log_n <= 16; ++log_n) {
    const std::uint32_t n = 1u << log_n;
    const auto g2 = core::greedy_d(n, n, 2, core::Engine(seed + 400 + log_n));
    const auto left =
        core::always_go_left(n, n, 2, core::Engine(seed + 500 + log_n));
    const auto collision = core::run_collision_protocol(
        n, n, 2, 2, core::Engine(seed + 600 + log_n));
    tleft.add_row(
        {io::Table::format_number(n),
         io::Table::format_number(static_cast<double>(g2.max_load)),
         io::Table::format_number(static_cast<double>(left.max_load)),
         io::Table::format_number(static_cast<double>(collision.rounds)),
         io::Table::format_number(static_cast<double>(collision.max_load))});
    left_rows.push_back({static_cast<double>(n),
                         static_cast<double>(g2.max_load),
                         static_cast<double>(left.max_load),
                         static_cast<double>(collision.rounds),
                         static_cast<double>(collision.max_load)});
  }
  bench::emit(tleft, options, "baselines_left_collision",
              {"n", "greedy2_max", "always_go_left2_max",
               "collision_rounds", "collision_max"},
              left_rows);

  // --- Infinite sequential reallocation (Azar et al. / Cole et al.) -------
  io::Table trealloc({"d", "max_load_seen", "lnln_over_lnd"});
  trealloc.set_title(
      "Sequential reallocation, n = 4096 balls, 500 rounds of n steps");
  std::vector<std::vector<double>> realloc_rows;
  for (const std::uint32_t d : {1u, 2u, 3u}) {
    auto chain = core::SequentialReallocation::round_robin(
        4096, d, core::Engine(seed + 700 + d));
    std::uint64_t worst = 0;
    for (int round = 0; round < 500; ++round) {
      worst = std::max(worst, chain.step().max_load);
    }
    const double lnln = std::log(std::log(4096.0));
    const double predicted = d == 1 ? std::log(4096.0) / lnln
                                    : lnln / std::log(static_cast<double>(d));
    trealloc.add_row(
        {io::Table::format_number(d),
         io::Table::format_number(static_cast<double>(worst)),
         io::Table::format_number(predicted)});
    realloc_rows.push_back(
        {static_cast<double>(d), static_cast<double>(worst), predicted});
  }
  bench::emit(trealloc, options, "baselines_reallocation",
              {"d", "max_load_seen", "prediction"}, realloc_rows);

  // --- Heavily loaded threshold (Lenzen et al. regime) --------------------
  io::Table theavy({"m/n", "threshold", "rounds", "max_load"});
  theavy.set_title("Heavily loaded THRESHOLD, n = 4096");
  std::vector<std::vector<double>> heavy_rows;
  for (std::uint64_t factor : {2ull, 8ull, 32ull, 128ull}) {
    const std::uint32_t n = 4096;
    const std::uint64_t m = factor * n;
    const auto result =
        core::run_threshold(n, m, factor + 1, core::Engine(seed + factor));
    theavy.add_row({io::Table::format_number(static_cast<double>(factor)),
                    io::Table::format_number(static_cast<double>(factor + 1)),
                    io::Table::format_number(
                        static_cast<double>(result.rounds)),
                    io::Table::format_number(
                        static_cast<double>(result.max_load))});
    heavy_rows.push_back({static_cast<double>(factor),
                          static_cast<double>(factor + 1),
                          static_cast<double>(result.rounds),
                          static_cast<double>(result.max_load)});
  }
  bench::emit(theavy, options, "baselines_heavy_threshold",
              {"m_over_n", "threshold", "rounds", "max_load"}, heavy_rows);

  // --- Repeated balls-into-bins recovery ----------------------------------
  io::Table trec({"n", "rounds_to_log_n", "max_load_after"});
  trec.set_title("Repeated balls-into-bins: adversarial recovery");
  std::vector<std::vector<double>> rec_rows;
  for (std::uint32_t log_n = 8; log_n <= 12; ++log_n) {
    const std::uint32_t n = 1u << log_n;
    auto process =
        core::RepeatedBallsIntoBins::adversarial(n, core::Engine(seed));
    const auto target = static_cast<std::uint64_t>(
        2.0 * std::log2(static_cast<double>(n)));
    std::uint64_t rounds = 0;
    while (process.max_load() > target && rounds < 100ull * n) {
      (void)process.step();
      ++rounds;
    }
    trec.add_row({io::Table::format_number(n),
                  io::Table::format_number(static_cast<double>(rounds)),
                  io::Table::format_number(
                      static_cast<double>(process.max_load()))});
    rec_rows.push_back({static_cast<double>(n), static_cast<double>(rounds),
                        static_cast<double>(process.max_load())});
  }
  bench::emit(trec, options, "baselines_becchetti",
              {"n", "rounds_to_2log2n", "max_load_after"}, rec_rows);

  // --- Adler d-copy FIFO ----------------------------------------------------
  io::Table tadler({"d", "m", "wait_avg", "wait_max", "in_flight"});
  tadler.set_title("Adler d-copy FIFO, n = 4096, 5000 rounds");
  std::vector<std::vector<double>> adler_rows;
  for (std::uint32_t d : {2u, 3u}) {
    const std::uint32_t n = 4096;
    // Largest m within the theory's bound m < n/(3de).
    const auto m = static_cast<std::uint64_t>(
        static_cast<double>(n) / (3.0 * d * 2.718281828) * 0.9);
    core::AdlerFifoConfig config{.n = n, .d = d, .m = m};
    core::AdlerFifo process(config, core::Engine(seed + d));
    for (int i = 0; i < 5000; ++i) (void)process.step();
    tadler.add_row(
        {io::Table::format_number(d),
         io::Table::format_number(static_cast<double>(m)),
         io::Table::format_number(process.waits().mean()),
         io::Table::format_number(static_cast<double>(process.waits().max())),
         io::Table::format_number(static_cast<double>(process.in_flight()))});
    adler_rows.push_back({static_cast<double>(d), static_cast<double>(m),
                          process.waits().mean(),
                          static_cast<double>(process.waits().max()),
                          static_cast<double>(process.in_flight())});
  }
  bench::emit(tadler, options, "baselines_adler",
              {"d", "m", "wait_avg", "wait_max", "in_flight"}, adler_rows);

  return 0;
}
