// E1 — Figure 4 (left): normalized pool size as a function of the
// capacity c ∈ [1, 5] for the paper's two injection rates λ = 1 − 1/2²
// and λ = 1 − 1/2^10, against the dashed reference (1/c)·ln(1/(1−λ)) + 1.
//
// Expected shape (paper): the pool shrinks roughly like 1/c and stays
// below the reference curve for every c.
#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_fig4_pool_vs_c",
                       "Figure 4 (left): normalized pool size vs capacity");
  bench::add_standard_flags(parser);
  parser.add_flag("cmax", "largest capacity to sweep", "5");
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const auto c_max = static_cast<std::uint32_t>(parser.get_uint("cmax"));

  const std::vector<std::uint32_t> lambda_exponents = {2, 10};

  io::Table table({"c", "lambda", "pool/n", "reference", "below_ref",
                   "thm2_bound/n"});
  table.set_title("Figure 4 (left): normalized pool size vs capacity c");
  std::vector<std::vector<double>> csv_rows;

  for (const std::uint32_t i : lambda_exponents) {
    const double lambda = sim::lambda_one_minus_2pow(i);
    for (std::uint32_t c = 1; c <= c_max; ++c) {
      const auto config =
          bench::make_cell(options, c, sim::lambda_n_for(options.n, i));
      const auto result = bench::run_cell(config);
      const double measured = result.normalized_pool.mean();
      const double reference = analysis::fig4_reference(lambda, c);
      const double bound =
          analysis::pool_bound_thm2(options.n, lambda, c) / options.n;
      table.add_row({io::Table::format_number(c),
                     "1-2^-" + std::to_string(i),
                     io::Table::format_number(measured),
                     io::Table::format_number(reference),
                     measured <= reference ? "yes" : "NO",
                     io::Table::format_number(bound)});
      csv_rows.push_back({static_cast<double>(c), lambda, measured,
                          result.normalized_pool.sem(), reference, bound});
    }
  }

  bench::emit(table, options, "fig4_pool_vs_c",
              {"c", "lambda", "pool_over_n", "sem", "reference",
               "thm2_bound_over_n"},
              csv_rows);
  return 0;
}
