// E17 — non-uniform bins (toward the paper's reference [6]): with a
// fixed total buffer budget Σc_i = c̄·n, does the *distribution* of
// capacities matter, and does capacity-proportional routing help?
//
// Measured shape (a genuinely instructive negative result): in this
// model every bin serves exactly ONE ball per round regardless of its
// buffer size — buffers add acceptance smoothing, not service rate. So
// (i) concentrating capacity in few bins under uniform routing wastes
// it (pool/waits degrade vs the homogeneous farm), and (ii)
// capacity-proportional routing makes things strictly WORSE: it pushes
// arrival rate ∝ c_i onto bins whose service rate is still 1/round,
// overloading exactly the bins with the big buffers. The homogeneous
// farm wins at every capacity budget; "bigger buffer" must never be
// conflated with "faster server" when provisioning by this model.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/hetero_capped.hpp"
#include "sim/runner.hpp"

namespace {

struct Scenario {
  std::string name;
  iba::core::HeteroCappedConfig config;
};

iba::core::HeteroCappedConfig make_config(std::uint32_t n,
                                          std::uint64_t lambda_n) {
  iba::core::HeteroCappedConfig config;
  config.capacities.assign(n, 0);
  config.lambda_n = lambda_n;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iba;
  io::ArgParser parser("bench_hetero",
                       "capacity distribution and weighted routing");
  bench::add_standard_flags(parser);
  if (!parser.parse_or_exit(argc, argv)) return 0;
  const auto options = bench::read_standard_flags(parser);
  const std::uint32_t n = options.n;
  const std::uint64_t lambda_n =
      static_cast<std::uint64_t>(n) - (n >> 6);  // λ = 1 − 2^−6

  // All scenarios have total budget 2n.
  std::vector<Scenario> scenarios;
  {
    Scenario s{"homogeneous c=2", make_config(n, lambda_n)};
    s.config.capacities.assign(n, 2);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"skewed 4/1 (uniform routing)", make_config(n, lambda_n)};
    for (std::uint32_t i = 0; i < n; ++i) {
      s.config.capacities[i] = i < n / 3 ? 4 : 1;
    }
    while (s.config.total_capacity() < 2ull * n) {
      s.config.capacities[n - 1]++;  // absorb rounding in one bin
    }
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"skewed 4/1 (capacity-proportional routing)",
               make_config(n, lambda_n)};
    s.config.weights.assign(n, 1.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      s.config.capacities[i] = i < n / 3 ? 4 : 1;
      s.config.weights[i] = s.config.capacities[i];
    }
    while (s.config.total_capacity() < 2ull * n) {
      s.config.capacities[n - 1]++;
    }
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"extreme 16/1 (capacity-proportional routing)",
               make_config(n, lambda_n)};
    s.config.weights.assign(n, 1.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      s.config.capacities[i] = i < n / 15 ? 16 : 1;
      s.config.weights[i] = s.config.capacities[i];
    }
    scenarios.push_back(std::move(s));
  }

  io::Table table({"scenario", "total_cap/n", "pool/n", "wait_avg",
                   "wait_max"});
  table.set_title("Non-uniform bins, lambda = 1-2^-6, budget ~ 2n");
  std::vector<std::vector<double>> csv_rows;
  double scenario_id = 0;

  for (Scenario& scenario : scenarios) {
    std::fprintf(stderr, "[cell] %s ...\n", scenario.name.c_str());
    core::HeteroCapped process(scenario.config, core::Engine(options.seed));
    sim::RunSpec spec;
    spec.burn_in = sim::suggested_burn_in(
        static_cast<double>(lambda_n) / static_cast<double>(n));
    spec.auto_burn_in = false;
    spec.measure_rounds = options.rounds;
    const auto result = sim::run_experiment(process, spec);

    const double budget =
        static_cast<double>(scenario.config.total_capacity()) / n;
    table.add_row({scenario.name, io::Table::format_number(budget),
                   io::Table::format_number(result.normalized_pool.mean()),
                   io::Table::format_number(result.wait_mean),
                   io::Table::format_number(
                       static_cast<double>(result.wait_max))});
    csv_rows.push_back({scenario_id++, budget,
                        result.normalized_pool.mean(), result.wait_mean,
                        static_cast<double>(result.wait_max)});
  }

  bench::emit(table, options, "hetero",
              {"scenario", "total_cap_over_n", "pool_over_n", "wait_avg",
               "wait_max"},
              csv_rows);
  return 0;
}
